"""Workload specifications: the nine dataset recipes of Table 1.

Each workload fixes (a) the proportion of subscriptions with 0-3
equality predicates, (b) the attribute multiplicity (original quotes,
or 2x/4x attributes obtained by merging multiple quotes into one
publication), and (c) the distribution used to select subscription
values (uniform, Zipf on the symbol, or Zipf on all attributes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import WorkloadError

__all__ = ["Distribution", "WorkloadSpec", "WORKLOADS", "workload_names",
           "get_workload"]


class Distribution:
    """How subscription seed values are selected from the quote data."""

    UNIFORM = "uniform"
    ZIPF_SYMBOL = "zipf_symbol"  # Zipf law over the symbol popularity
    ZIPF_ALL = "zipf_all"        # Zipf over quotes *and* range shapes

    ALL = (UNIFORM, ZIPF_SYMBOL, ZIPF_ALL)


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table 1."""

    name: str
    #: fraction of subscriptions having k equality predicates.
    equality_mix: Dict[int, float]
    #: 1 = original 8-11 attributes; 2/4 = merged quotes (2x/4x attrs).
    attribute_multiplier: int
    #: value-selection distribution (Table 1, last column).
    distribution: str
    #: Zipf exponent for the skewed variants (paper: s = 1).
    zipf_exponent: float = 1.0

    def __post_init__(self) -> None:
        total = sum(self.equality_mix.values())
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"{self.name}: equality mix sums to {total}, expected 1")
        if self.attribute_multiplier not in (1, 2, 4):
            raise WorkloadError(
                f"{self.name}: attribute multiplier must be 1, 2 or 4")
        if self.distribution not in Distribution.ALL:
            raise WorkloadError(
                f"{self.name}: unknown distribution "
                f"{self.distribution!r}")

    @property
    def mean_equality_predicates(self) -> float:
        return sum(k * p for k, p in self.equality_mix.items())


_E80_MIX = {0: 0.20, 1: 0.80}
_EXT_MIX = {0: 0.15, 1: 0.60, 2: 0.15, 3: 0.10}

#: Table 1 (adapted from Barazzutti et al. [4]).
WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (
        WorkloadSpec("e100a1", {1: 1.0}, 1, Distribution.UNIFORM),
        WorkloadSpec("e80a1", dict(_E80_MIX), 1, Distribution.UNIFORM),
        WorkloadSpec("e80a2", dict(_E80_MIX), 2, Distribution.UNIFORM),
        WorkloadSpec("e80a4", dict(_E80_MIX), 4, Distribution.UNIFORM),
        WorkloadSpec("extsub2", dict(_EXT_MIX), 2, Distribution.UNIFORM),
        WorkloadSpec("extsub4", dict(_EXT_MIX), 4, Distribution.UNIFORM),
        WorkloadSpec("e80a1z100", dict(_E80_MIX), 1,
                     Distribution.ZIPF_SYMBOL),
        WorkloadSpec("e80a1zz100", dict(_E80_MIX), 1,
                     Distribution.ZIPF_ALL),
        WorkloadSpec("e100a1zz100", {1: 1.0}, 1, Distribution.ZIPF_ALL),
    )
}


def workload_names() -> Tuple[str, ...]:
    """The nine dataset names in Table 1 order."""
    return tuple(WORKLOADS)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload; raises WorkloadError for unknown names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}")
