"""Ticker-symbol universe for the synthetic quote generator.

The paper's datasets were built from ~250 000 Yahoo! finance quotes
collected over five years. We have no network, so we synthesise a
realistic symbol universe: a core of well-known tickers plus
deterministically generated ones, giving workload generators a stable,
seed-reproducible population.
"""

from __future__ import annotations

from typing import List

from repro.crypto.drbg import HmacDrbg

__all__ = ["KNOWN_SYMBOLS", "symbol_universe"]

#: A plausible core of real-world tickers (incl. the paper's "HAL").
KNOWN_SYMBOLS = (
    "AAPL", "MSFT", "GOOG", "AMZN", "IBM", "HAL", "XOM", "GE", "JPM",
    "WFC", "T", "VZ", "PFE", "MRK", "KO", "PEP", "WMT", "PG", "JNJ",
    "CVX", "INTC", "CSCO", "ORCL", "HPQ", "DELL", "TXN", "QCOM", "AMD",
    "NVDA", "MU", "BA", "CAT", "MMM", "HON", "UTX", "GD", "LMT", "NOC",
    "F", "GM", "TM", "DIS", "CMCSA", "FOX", "CBS", "NKE", "SBUX", "MCD",
    "YUM", "GIS",
)

_LETTERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def symbol_universe(n_symbols: int, seed: bytes = b"symbols") -> List[str]:
    """Deterministic universe of ``n_symbols`` unique tickers.

    Starts with :data:`KNOWN_SYMBOLS` and extends with generated 3-4
    letter tickers from a seeded DRBG.
    """
    if n_symbols <= 0:
        raise ValueError("n_symbols must be positive")
    symbols = list(KNOWN_SYMBOLS[:n_symbols])
    if len(symbols) >= n_symbols:
        return symbols
    seen = set(symbols)
    drbg = HmacDrbg(seed)
    while len(symbols) < n_symbols:
        length = drbg.randint(3, 4)
        candidate = "".join(
            _LETTERS[drbg.randint(0, 25)] for _ in range(length))
        if candidate not in seen:
            seen.add(candidate)
            symbols.append(candidate)
    return symbols
