"""Dataset assembly: quotes + subscriptions + publications per workload.

One :class:`Dataset` bundles everything an experiment consumes: the
subscription set built to a Table 1 recipe, the publication batch to
match against it, and the ASPE schema (attribute union + normalisation
scales) for the baseline comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
import zlib
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aspe.scheme import AttributeSchema
from repro.errors import WorkloadError
from repro.matching.events import Event
from repro.matching.subscriptions import Subscription
from repro.workloads.quotes import QuoteCollection, generate_quotes
from repro.workloads.spec import WorkloadSpec, get_workload
from repro.workloads.subscriptions_gen import (SubscriptionGenerator,
                                               merged_events)

__all__ = ["Dataset", "build_dataset", "dataset_statistics"]


@dataclass
class Dataset:
    """A fully materialised workload instance."""

    name: str
    spec: WorkloadSpec
    subscriptions: List[Subscription]
    publications: List[Event]
    attribute_names: Tuple[str, ...]
    collection: QuoteCollection

    @property
    def n_subscriptions(self) -> int:
        return len(self.subscriptions)

    @property
    def n_publications(self) -> int:
        return len(self.publications)

    def aspe_schema(self) -> AttributeSchema:
        """Attribute schema + scales for the ASPE baseline."""
        return AttributeSchema.from_events(self.attribute_names,
                                           self.publications)

    def subscription_prefix(self, count: int) -> List[Subscription]:
        """First ``count`` subscriptions (sweeps grow the database)."""
        if count > len(self.subscriptions):
            raise WorkloadError(
                f"dataset {self.name} has {len(self.subscriptions)} "
                f"subscriptions, {count} requested")
        return self.subscriptions[:count]


@lru_cache(maxsize=4)
def _quotes_cached(n_quotes: int, n_symbols: int,
                   seed: int) -> QuoteCollection:
    return generate_quotes(n_quotes, n_symbols, seed)


def build_dataset(name: str, n_subscriptions: int, n_publications: int,
                  seed: int = 2016, n_quotes: int = 20000,
                  n_symbols: int = 100) -> Dataset:
    """Materialise one Table 1 workload.

    The quote collection is cached across calls (same collection, as in
    the paper where all nine datasets derive from one crawl).
    """
    spec = get_workload(name)
    collection = _quotes_cached(n_quotes, n_symbols, seed)
    # Stable per-workload seed (str.hash is randomised per process).
    name_digest = zlib.crc32(name.encode()) % 100000
    generator = SubscriptionGenerator(collection, spec,
                                      seed=seed + name_digest)
    subscriptions = generator.generate(n_subscriptions)
    rng = np.random.default_rng(seed + 7)
    publications = merged_events(collection, spec.attribute_multiplier,
                                 n_publications, rng)
    if spec.attribute_multiplier == 1:
        attribute_names = collection.attribute_names
    else:
        attribute_names = tuple(
            f"q{j}_{attribute}"
            for j in range(spec.attribute_multiplier)
            for attribute in collection.attribute_names)
    return Dataset(name=name, spec=spec, subscriptions=subscriptions,
                   publications=publications,
                   attribute_names=attribute_names,
                   collection=collection)


def dataset_statistics(dataset: Dataset) -> Dict[str, float]:
    """Table 1 verification metrics: equality mix, attribute counts.

    Used by the Table 1 benchmark to show the generated datasets match
    the recipes.
    """
    eq_histogram: Dict[int, int] = {}
    constraint_counts = []
    for subscription in dataset.subscriptions:
        n_eq = subscription.n_equality_constraints
        eq_histogram[n_eq] = eq_histogram.get(n_eq, 0) + 1
        constraint_counts.append(subscription.n_constraints)
    total = len(dataset.subscriptions)
    pub_attr_counts = [len(event) for event in dataset.publications]
    return {
        "n_subscriptions": total,
        "n_publications": len(dataset.publications),
        "eq_fraction_0": eq_histogram.get(0, 0) / total,
        "eq_fraction_1": eq_histogram.get(1, 0) / total,
        "eq_fraction_2": eq_histogram.get(2, 0) / total,
        "eq_fraction_3": eq_histogram.get(3, 0) / total,
        "mean_constraints_per_sub": float(np.mean(constraint_counts)),
        "min_pub_attributes": min(pub_attr_counts),
        "max_pub_attributes": max(pub_attr_counts),
        "mean_pub_attributes": float(np.mean(pub_attr_counts)),
        "distinct_subscriptions": len({s.key() for s
                                       in dataset.subscriptions}),
    }
