"""Workload generation: the paper's nine Table 1 datasets.

Synthetic stock quotes (the offline Yahoo! finance substitute), Zipf
samplers, subscription synthesis and dataset assembly.
"""

from repro.workloads.datasets import (Dataset, build_dataset,
                                      dataset_statistics)
from repro.workloads.io import load_dataset, save_dataset
from repro.workloads.quotes import (BASE_ATTRIBUTES, OPTIONAL_ATTRIBUTES,
                                    Quote, QuoteCollection,
                                    generate_quotes)
from repro.workloads.spec import (Distribution, WORKLOADS, WorkloadSpec,
                                  get_workload, workload_names)
from repro.workloads.subscriptions_gen import (SubscriptionGenerator,
                                               merged_events)
from repro.workloads.symbols import KNOWN_SYMBOLS, symbol_universe
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "Dataset", "build_dataset", "dataset_statistics",
    "save_dataset", "load_dataset",
    "Quote", "QuoteCollection", "generate_quotes",
    "BASE_ATTRIBUTES", "OPTIONAL_ATTRIBUTES",
    "Distribution", "WorkloadSpec", "WORKLOADS", "workload_names",
    "get_workload",
    "SubscriptionGenerator", "merged_events",
    "KNOWN_SYMBOLS", "symbol_universe",
    "ZipfSampler",
]
