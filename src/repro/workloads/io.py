"""Dataset persistence: save and reload workload instances.

The paper's datasets were fixed files derived from one crawl, reused
across experiments. This module gives our synthetic datasets the same
property: a generated :class:`~repro.workloads.datasets.Dataset` can be
written to a single portable file (JSON-lines, one record per quote /
publication / subscription) and reloaded bit-for-bit, so experiment
runs can share exact inputs across machines and sessions.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO

from repro.errors import WorkloadError
from repro.matching.events import Event
from repro.matching.predicates import Op, Predicate
from repro.matching.subscriptions import Subscription
from repro.workloads.datasets import Dataset
from repro.workloads.quotes import Quote, QuoteCollection
from repro.workloads.spec import get_workload

__all__ = ["save_dataset", "load_dataset", "subscription_to_record",
           "subscription_from_record"]

_FORMAT_VERSION = 1


def subscription_to_record(subscription: Subscription) -> Dict:
    """JSON-safe record capturing a subscription's exact constraints."""
    constraints = []
    for attribute, c in subscription.items:
        constraints.append({
            "attr": attribute,
            "string": c.is_string,
            "equals": c.equals,
            "lo": None if c.lo == float("-inf") else c.lo,
            "hi": None if c.hi == float("inf") else c.hi,
            "lo_open": c.lo_open,
            "hi_open": c.hi_open,
            "excluded": sorted(
                [["s", v] if isinstance(v, str) else ["n", v]
                 for v in c.excluded]),
        })
    return {"constraints": constraints}


def subscription_from_record(record: Dict) -> Subscription:
    """Rebuild a subscription from :func:`subscription_to_record`."""
    predicates: List[Predicate] = []
    for block in record["constraints"]:
        attribute = block["attr"]
        if block["string"]:
            if block["equals"] is not None:
                predicates.append(Predicate(attribute, Op.EQ,
                                            block["equals"]))
            elif not block["excluded"]:
                predicates.append(Predicate(attribute, Op.EXISTS))
        else:
            lo, hi = block["lo"], block["hi"]
            if lo is not None:
                predicates.append(Predicate(
                    attribute, Op.GT if block["lo_open"] else Op.GE,
                    lo))
            if hi is not None:
                predicates.append(Predicate(
                    attribute, Op.LT if block["hi_open"] else Op.LE,
                    hi))
            if lo is None and hi is None and not block["excluded"]:
                predicates.append(Predicate(attribute, Op.EXISTS))
        for kind, value in block["excluded"]:
            predicates.append(Predicate(
                attribute, Op.NE, value if kind == "s" else value))
    return Subscription(predicates)


def save_dataset(dataset: Dataset, path: str) -> None:
    """Write a dataset to ``path`` (JSON-lines)."""
    with open(path, "w") as fh:
        _write(dataset, fh)


def _write(dataset: Dataset, fh: TextIO) -> None:
    fh.write(json.dumps({
        "kind": "header",
        "version": _FORMAT_VERSION,
        "workload": dataset.name,
        "attributes": list(dataset.attribute_names),
        "symbols": list(dataset.collection.symbols),
        "n_quotes": len(dataset.collection),
        "n_subscriptions": len(dataset.subscriptions),
        "n_publications": len(dataset.publications),
    }) + "\n")
    for quote in dataset.collection.quotes:
        fh.write(json.dumps({"kind": "quote",
                             "header": quote.header}) + "\n")
    for event in dataset.publications:
        fh.write(json.dumps({"kind": "publication",
                             "id": event.event_id,
                             "header": event.header}) + "\n")
    for subscription in dataset.subscriptions:
        record = subscription_to_record(subscription)
        record["kind"] = "subscription"
        fh.write(json.dumps(record) + "\n")


def load_dataset(path: str) -> Dataset:
    """Reload a dataset written by :func:`save_dataset`."""
    with open(path) as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines or lines[0].get("kind") != "header":
        raise WorkloadError(f"{path}: not a dataset file")
    header = lines[0]
    if header.get("version") != _FORMAT_VERSION:
        raise WorkloadError(
            f"{path}: unsupported dataset version "
            f"{header.get('version')}")
    quotes: List[Quote] = []
    publications: List[Event] = []
    subscriptions: List[Subscription] = []
    for record in lines[1:]:
        kind = record.get("kind")
        if kind == "quote":
            quotes.append(Quote(record["header"]["symbol"],
                                record["header"]))
        elif kind == "publication":
            publications.append(Event(record["header"],
                                      event_id=record.get("id", 0)))
        elif kind == "subscription":
            subscriptions.append(subscription_from_record(record))
        else:
            raise WorkloadError(f"{path}: unknown record kind {kind!r}")
    expected = (header["n_quotes"], header["n_subscriptions"],
                header["n_publications"])
    actual = (len(quotes), len(subscriptions), len(publications))
    if expected != actual:
        raise WorkloadError(
            f"{path}: truncated dataset (expected {expected} records, "
            f"got {actual})")
    collection = QuoteCollection(quotes, header["symbols"])
    return Dataset(name=header["workload"],
                   spec=get_workload(header["workload"]),
                   subscriptions=subscriptions,
                   publications=publications,
                   attribute_names=tuple(header["attributes"]),
                   collection=collection)
