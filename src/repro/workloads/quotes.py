"""Synthetic stock-quote generator (the Yahoo! finance substitute).

The paper's datasets come from ~250 000 real quotes with 8-11
attributes each (§4). Offline, we synthesise an equivalent collection:
per-symbol geometric-Brownian price paths with correlated OHLC fields,
log-normal volumes, and a per-symbol static profile (market cap, P/E,
dividend yield) that appears on a random subset of quotes so the
per-publication attribute count varies over the paper's 8-11 range.

Determinism: everything derives from one numpy seed, so datasets are
reproducible across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.matching.events import Event
from repro.workloads.symbols import symbol_universe

__all__ = ["Quote", "QuoteCollection", "generate_quotes",
           "BASE_ATTRIBUTES", "OPTIONAL_ATTRIBUTES"]

#: always present (8 attributes, including the symbol).
BASE_ATTRIBUTES = ("symbol", "open", "high", "low", "close", "volume",
                   "change_pct", "avg_volume")
#: present on a random subset of quotes (8 -> up to 11 attributes).
OPTIONAL_ATTRIBUTES = ("market_cap", "pe_ratio", "dividend_yield")


@dataclass(frozen=True)
class Quote:
    """One synthetic quote; ``header`` is the publication header."""

    symbol: str
    header: Dict[str, float]

    def to_event(self, event_id: int = 0) -> Event:
        return Event(dict(self.header), event_id=event_id)


class QuoteCollection:
    """A generated quote dataset with its symbol universe."""

    def __init__(self, quotes: List[Quote], symbols: List[str]) -> None:
        if not quotes:
            raise WorkloadError("empty quote collection")
        self.quotes = quotes
        self.symbols = symbols
        self._by_symbol: Dict[str, List[Quote]] = {}
        for quote in quotes:
            self._by_symbol.setdefault(quote.symbol, []).append(quote)

    def __len__(self) -> int:
        return len(self.quotes)

    def __getitem__(self, index: int) -> Quote:
        return self.quotes[index]

    def quotes_for(self, symbol: str) -> List[Quote]:
        return self._by_symbol.get(symbol, [])

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Union of attributes appearing in the collection."""
        return BASE_ATTRIBUTES + OPTIONAL_ATTRIBUTES

    def events(self) -> List[Event]:
        """The whole collection as publication events."""
        return [quote.to_event(i) for i, quote in enumerate(self.quotes)]


def _symbol_profile(rng: np.random.Generator) -> Dict[str, float]:
    """Static per-symbol fundamentals."""
    return {
        "base_price": float(rng.uniform(5.0, 500.0)),
        "volatility": float(rng.uniform(0.01, 0.04)),
        "base_volume": float(rng.uniform(1e5, 5e7)),
        "market_cap": float(rng.uniform(0.5, 500.0)),  # billions
        "pe_ratio": float(rng.uniform(5.0, 60.0)),
        "dividend_yield": float(rng.uniform(0.0, 6.0)),
    }


def generate_quotes(n_quotes: int, n_symbols: int = 100,
                    seed: int = 2016) -> QuoteCollection:
    """Generate ``n_quotes`` quotes over ``n_symbols`` tickers.

    Quotes are interleaved day-by-day across symbols; prices follow a
    geometric Brownian walk per symbol so ranges drawn around observed
    values (the subscription generator's strategy) overlap and nest the
    way real financial subscriptions do.
    """
    if n_quotes <= 0:
        raise WorkloadError("n_quotes must be positive")
    rng = np.random.default_rng(seed)
    symbols = symbol_universe(n_symbols)
    profiles = {symbol: _symbol_profile(rng) for symbol in symbols}
    prices = {symbol: profiles[symbol]["base_price"] for symbol in symbols}

    quotes: List[Quote] = []
    # Pre-draw symbol sequence: uniform across the universe.
    chosen = rng.integers(0, n_symbols, size=n_quotes)
    normals = rng.standard_normal(n_quotes)
    uniforms = rng.random((n_quotes, 6))
    for i in range(n_quotes):
        symbol = symbols[int(chosen[i])]
        profile = profiles[symbol]
        last_close = prices[symbol]
        drift = profile["volatility"] * float(normals[i])
        open_price = last_close
        close = max(0.5, open_price * (1.0 + drift))
        spread = abs(drift) + 0.25 * profile["volatility"]
        high = max(open_price, close) * (1.0 + spread
                                         * float(uniforms[i, 0]))
        low = min(open_price, close) * (1.0 - spread
                                        * float(uniforms[i, 1]))
        volume = profile["base_volume"] \
            * float(np.exp(0.5 * (uniforms[i, 2] - 0.5)))
        header: Dict[str, float] = {
            "symbol": symbol,
            "open": round(open_price, 2),
            "high": round(high, 2),
            "low": round(low, 2),
            "close": round(close, 2),
            "volume": round(volume, 0),
            "change_pct": round(100.0 * drift, 3),
            "avg_volume": round(profile["base_volume"], 0),
        }
        # 8-11 attributes: each optional field present with p=0.5.
        if uniforms[i, 3] < 0.5:
            header["market_cap"] = round(profile["market_cap"], 2)
        if uniforms[i, 4] < 0.5:
            header["pe_ratio"] = round(profile["pe_ratio"], 1)
        if uniforms[i, 5] < 0.5:
            header["dividend_yield"] = round(profile["dividend_yield"], 2)
        prices[symbol] = close
        quotes.append(Quote(symbol, header))
    return QuoteCollection(quotes, symbols)
