#!/usr/bin/env python
"""Robust routing: seeded faults, retry/backoff, dead letters, metrics.

The quickstart shows the happy path; this example runs the same SCBR
fabric under adversity and shows that nothing is ever *silently* lost:

1. the publisher->router link drops 25% of messages (seeded, so every
   run reproduces the same faults);
2. a subscriber ("ghost") registers a subscription but never opens its
   bus endpoint, so deliveries to it retry with capped exponential
   backoff and finally land in the dead-letter queue;
3. an attacker injects a malformed frame and a mistyped frame — both
   are quarantined with a recorded cause while good traffic flows on;
4. the metrics registry ties it together: publications in equal
   deliveries out plus accounted wire drops plus dead letters.

Run with:  python examples/robust_routing.py
"""

from repro import (FaultPlan, LinkFaults, MessageBus, MetricsRegistry,
                   SgxPlatform)
from repro.core import (Client, Publisher, RetryPolicy, Router,
                        ScbrEnclaveLibrary, ServiceProvider)
from repro.core.messages import encode_subscription, hybrid_encrypt
from repro.core.protocol import (build_deliver,
                                 build_subscription_request)
from repro.crypto.rsa import generate_keypair
from repro.matching.subscriptions import Subscription
from repro.sgx import AttestationService, EnclaveBuilder


def main() -> None:
    # -- a fabric with a lossy publisher link and shared metrics --------
    registry = MetricsRegistry()
    plan = FaultPlan(seed=7).on_link("publisher", "router",
                                     LinkFaults(drop=0.25))
    bus = MessageBus(fault_plan=plan, metrics=registry)
    platform = SgxPlatform()
    attestation_service = AttestationService()
    attestation_service.register_platform(platform)
    vendor_key = generate_keypair(bits=1024)
    expected = EnclaveBuilder(platform, ScbrEnclaveLibrary).measure()
    router = Router(bus, platform, vendor_key, metrics=registry,
                    retry_policy=RetryPolicy(max_attempts=3,
                                             base_delay_ticks=1,
                                             max_delay_ticks=4))
    provider = ServiceProvider(bus, rsa_bits=1024,
                               attestation_service=attestation_service,
                               expected_mr_enclave=expected)
    provider.provision_router(router)
    publisher = Publisher(bus, provider.keys, provider.group)
    print("fabric up: publisher->router drops 25% (seed 7), "
          "retry schedule 3 attempts with 1,2-tick backoff")

    # -- alice subscribes and stays connected ---------------------------
    alice = Client(bus, "alice", provider.keys.public_key)
    alice.process_admission(provider.admit_client("alice"))
    alice.subscribe("provider", {"symbol": "HAL"})

    # -- ghost subscribes but never opens an endpoint --------------------
    provider.admit_client("ghost")
    blob = encode_subscription(Subscription.parse({"symbol": "HAL"}))
    provider.endpoint.send("provider", [build_subscription_request(
        "ghost", hybrid_encrypt(provider.keys.public_key, blob,
                                aad=b"ghost"))])
    provider.pump("router")
    router.pump()
    print("subscribed: alice (connected) and ghost (endpoint missing)")

    # -- hostile traffic --------------------------------------------------
    mallory = bus.endpoint("mallory")
    mallory.send("router", [b"PUB:!!this is not a valid frame!!"])
    mallory.send("router", [build_deliver(b"misdirected")])

    # -- publications under fire -----------------------------------------
    sent = 20
    for index in range(sent):
        publisher.publish("router",
                          {"symbol": "HAL", "price": 40.0 + index},
                          b"tick %d" % index)
        router.pump()
        alice.pump()
    router.drain_retries()   # let ghost's backoff schedule run dry
    alice.pump()

    # -- conservation: nothing silent -------------------------------------
    stats = router.stats()
    metrics = stats["metrics"]
    arrived = int(metrics["router.publications_total"])
    dropped = bus.dropped_messages
    delivered = int(metrics["router.deliveries_total"])
    dead = int(metrics["router.deliveries_dead_lettered_total"])
    reasons = stats["dead_letters_by_reason"]

    print(f"\npublications: {sent} sent = {arrived} arrived "
          f"+ {dropped} dropped on the wire (all counted)")
    print(f"matched deliveries: {int(metrics['router.match_fanout.sum'])}"
          f" = {delivered} delivered + {dead} dead after retries")
    print(f"alice received {len(alice.received)} payloads")
    print(f"dead letters by cause: {reasons}")
    print(f"retries spent on ghost: "
          f"{int(metrics['router.delivery_retries_total'])}")

    assert arrived + dropped == sent
    assert delivered + dead == int(metrics["router.match_fanout.sum"])
    assert delivered == len(alice.received) == arrived
    assert reasons["poison-frame"] == 1
    assert reasons["unexpected-type"] == 1
    assert reasons["retries-exhausted"] == dead
    print("\nconservation holds: every publication is delivered, "
          "counted as a wire drop, or dead-lettered with a cause.")


if __name__ == "__main__":
    main()
