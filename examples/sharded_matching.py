#!/usr/bin/env python
"""The EPC cliff, and the live-migration escape hatch.

Act 1 grows a single matcher slice straight past its (scaled) usable
EPC and watches per-event latency inflect — Fig. 8's cliff, the
paper's hard limit. Act 2 runs the same feed into an EPC-aware
cluster whose autoscaler splits slices by *live migration* (sealed
checkpoint, registration-WAL suffix, one atomic routing flip) before
any working set reaches the threshold — latency stays flat. Act 3
stages a migration by hand, keeps registering and withdrawing into
the open window, and shows match sets never wavering from a flat
reference engine at any point in the move.

Run with:  python examples/sharded_matching.py
"""

import numpy as np

from repro.bench.report import format_table
from repro.core.cluster import MatcherCluster, MatcherSlice
from repro.core.sharding import ShardingPolicy
from repro.matching.poset import ContainmentForest
from repro.sgx.cpu import scaled_spec
from repro.workloads.datasets import _quotes_cached
from repro.workloads.spec import get_workload
from repro.workloads.subscriptions_gen import (SubscriptionGenerator,
                                               merged_events)

POINTS = [400, 800, 1600, 3200]
EPC_USABLE = 160 * 1024          # scaled: cliff at ~400 subscriptions
SPEC = scaled_spec(llc_bytes=256 * 1024,
                   epc_bytes=EPC_USABLE + EPC_USABLE // 4,
                   epc_reserved_bytes=EPC_USABLE // 4)
POLICY = ShardingPolicy(split_threshold_bytes=EPC_USABLE // 2,
                        min_split_subscriptions=32, max_slices=64)


def _feed(count):
    collection = _quotes_cached(20000, 100, 2016)
    generator = SubscriptionGenerator(collection,
                                      get_workload("e80a1"), seed=27)
    probes = merged_events(collection, 1, 12,
                           np.random.default_rng(9))
    return generator.generate_many(count), probes


def _p50(latencies):
    return sorted(latencies)[len(latencies) // 2]


def main() -> None:
    stream, probes = _feed(POINTS[-1])
    print(f"scaled platform: usable EPC "
          f"{SPEC.epc_usable_bytes // 1024} KiB, split threshold "
          f"{POLICY.split_threshold_bytes // 1024} KiB\n")

    # -- Acts 1 & 2: one slice vs the autoscaled cluster ------------
    flat = MatcherSlice(0, SPEC)
    cluster = MatcherCluster(1, spec=SPEC, assignment="epc-aware",
                             policy=POLICY)
    rows = []
    registered = 0
    for point in POINTS:
        for _ in range(point - registered):
            subscription = next(stream)
            flat.register(subscription, f"c{registered}")
            cluster.register(subscription, f"c{registered}")
            registered += 1
        cluster.autoscale()
        flat.warm()
        cluster.warm()
        flat_lat, flat_sets = [], []
        for event in probes:
            matched, elapsed = flat.match(event)
            flat_sets.append(matched)
            flat_lat.append(elapsed)
        results = cluster.match_batch(probes)
        assert [r.subscribers for r in results] == flat_sets, \
            "sharding changed the results!"
        rows.append([point, round(_p50(flat_lat), 1),
                     round(_p50([r.latency_us for r in results]), 1),
                     cluster.n_slices, cluster.migrations_completed])
    print(format_table(
        ["subs", "1 slice p50 us", "cluster p50 us", "slices",
         "migrations"],
        rows, title="the cliff (left) vs EPC-aware sharding (right)"))
    cliff = rows[-1][1] / rows[0][1]
    flatness = rows[-1][2] / rows[1][2]
    print(f"\nunsharded latency grew {cliff:.0f}x past the cliff; the "
          f"cluster stayed within {flatness:.2f}x of its small-scale "
          f"latency.\nEvery migration preserved match sets exactly "
          f"(asserted at every point).\n")

    # -- Act 3: a migration window, held open by hand ----------------
    print("staging a migration by hand and writing into the window:")
    reference = ContainmentForest()
    for key, (subscription, subscriber) in cluster._objects.items():
        if cluster.table.slice_of(key) is not None:
            reference.insert(subscription, subscriber)
    source = max(range(cluster.n_slices),
                 key=lambda s: len(cluster.table.members(s)))
    ticket = cluster.stage_migration(source)
    print(f"  sealed {len(ticket.keys)} registrations from slice "
          f"{source} into a checkpoint (target: slice "
          f"{ticket.target})")

    staged_sub, staged_client = cluster._objects[ticket.keys[0]]
    cluster.unregister(staged_sub, staged_client)
    reference.remove_subscriber(staged_sub, staged_client)
    extra_stream, _ = _feed(1)
    newcomer = next(extra_stream)
    cluster.register(newcomer, "late-arrival")
    reference.insert(newcomer, "late-arrival")
    print(f"  window writes: withdrew one staged registration, "
          f"admitted one newcomer ({len(ticket.wal)} WAL suffix "
          f"record(s))")

    during = [cluster.match(event).subscribers for event in probes]
    moved = cluster.complete_migration(ticket)
    after = [cluster.match(event).subscribers for event in probes]
    expected = [reference.match(event) for event in probes]
    assert during == expected and after == expected
    print(f"  completed: {moved} registrations flipped to slice "
          f"{ticket.target} in one routing-table version bump")
    print("  match sets during and after the window: identical to "
          "the flat engine.")


if __name__ == "__main__":
    main()
