#!/usr/bin/env python
"""Secure cloud routing: the full trust story, attack by attack.

Walks through what the SGX mechanisms buy SCBR, demonstrating each
security property with an actual (simulated) attack:

1. remote attestation rejects a tampered routing engine;
2. the infrastructure never sees plaintext (we grep its traffic);
3. a curious router cannot forge subscriptions into the enclave;
4. sealed state survives a restart, but replaying a *stale* sealed
   state is caught by the monotonic counter;
5. tampering with protected memory in DRAM locks the memory controller
   (MEE integrity tree).

Run with:  python examples/secure_cloud_routing.py
"""

from repro import MessageBus, SgxPlatform
from repro.core import (Client, Publisher, Router, ScbrEnclaveLibrary,
                        ServiceProvider)
from repro.core.messages import encode_subscription
from repro.core.keys import ProviderKeyChain
from repro.crypto.rsa import generate_keypair
from repro.errors import (AttestationError, AuthenticationError,
                          MemoryLockError, RollbackError)
from repro.matching.subscriptions import Subscription
from repro.sgx import (AttestationService, EnclaveBuilder,
                       MemoryEncryptionEngine)
from repro.sgx.sdk import EnclaveLibrary, ecall


class TamperedEngine(ScbrEnclaveLibrary):
    """A routing engine with a backdoor: leaks every subscription."""

    @ecall
    def leak(self):  # pragma: no cover - never reached
        return [node.subscription for node in
                self._forest.iter_nodes()]


def main() -> None:
    bus = MessageBus()
    platform = SgxPlatform()
    attestation_service = AttestationService()
    attestation_service.register_platform(platform)
    vendor_key = generate_keypair(bits=1024)
    genuine = EnclaveBuilder(platform, ScbrEnclaveLibrary).measure()

    # -- attack 1: swapped-in backdoored engine ---------------------------
    print("1. attestation vs a backdoored engine")
    evil_router = Router.__new__(Router)  # build manually with bad code
    evil_router.platform = platform
    evil_router.endpoint = bus.endpoint("evil-router")
    from repro.sgx.sdk import load_enclave
    evil_router.enclave = load_enclave(platform, TamperedEngine,
                                       vendor_key)
    evil_router.name = "evil-router"
    provider = ServiceProvider(bus, rsa_bits=1024,
                               attestation_service=attestation_service,
                               expected_mr_enclave=genuine)
    try:
        provider.provision_router(evil_router)
        raise SystemExit("backdoored engine was provisioned!")
    except AttestationError as exc:
        print(f"   rejected: {exc}")

    # -- the honest router ---------------------------------------------------
    router = Router(bus, platform, vendor_key)
    provider.provision_router(router)
    publisher = Publisher(bus, provider.keys, provider.group)
    alice = Client(bus, "alice", provider.keys.public_key)
    alice.process_admission(provider.admit_client("alice"))

    # -- attack 2: the infrastructure inspects all traffic --------------------
    print("2. traffic inspection by the infrastructure")
    secret_symbol = "TOPSECRETCORP"
    alice.subscribe("provider", {"symbol": secret_symbol})
    # Capture the wire bytes before they are consumed.
    sender, frames = bus.endpoint("provider").recv()
    assert all(secret_symbol.encode() not in f for f in frames)
    register_frame = provider.handle_subscription_request(frames[0])
    assert secret_symbol.encode() not in register_frame
    router.handle_register(register_frame)
    publisher.publish("router", {"symbol": secret_symbol},
                      b"confidential payload")
    sender, frames = bus.endpoint("router").recv()
    assert all(secret_symbol.encode() not in f for f in frames)
    assert all(b"confidential payload" not in f for f in frames)
    matched = router.handle_publish(frames[0])
    print(f"   plaintext never on the wire; enclave still matched "
          f"{matched}")
    alice.pump()
    assert alice.received == [b"confidential payload"]

    # -- attack 3: the router forges a subscription ---------------------------
    print("3. router forges a subscription for itself")
    rogue_keys = ProviderKeyChain(rsa_bits=1024)
    forged = rogue_keys.channel().protect(
        encode_subscription(Subscription.parse({"symbol": "HAL"})),
        aad=b"router-spy")
    try:
        router.enclave.ecall("register_subscription", forged,
                             rogue_keys.rsa.sign(forged))
        raise SystemExit("forged subscription accepted!")
    except AuthenticationError as exc:
        print(f"   rejected: {exc}")

    # -- attack 4: restart + stale-state replay ---------------------------------
    print("4. sealed restart and rollback protection")
    stale, counter_id = router.seal()
    alice.subscribe("provider", {"symbol": "NEWSUB"})
    provider.pump("router")
    router.pump()
    fresh, _counter = router.seal()
    restarted = Router(bus, platform, vendor_key, name="router-2")
    count = restarted.restore(fresh, counter_id)
    print(f"   fresh state restored: {count} subscriptions")
    restarted_again = Router(bus, platform, vendor_key, name="router-3")
    try:
        restarted_again.restore(stale, counter_id)
        raise SystemExit("stale sealed state accepted!")
    except RollbackError as exc:
        print(f"   stale state rejected: {exc}")

    # -- attack 5: DRAM tampering behind the MEE ---------------------------------
    print("5. physical DRAM tampering vs the MEE integrity tree")
    mee = MemoryEncryptionEngine(b"\x42" * 16, n_blocks=16)
    mee.write_block(3, b"enclave page with the subscription index")
    assert b"subscription" not in mee.dram[3]  # encrypted at rest
    mee.dram[3] = bytes(len(mee.dram[3]))     # attacker wipes the page
    try:
        mee.read_block(3)
        raise SystemExit("tampered page went unnoticed!")
    except MemoryLockError as exc:
        print(f"   detected, memory controller locked: {exc}")

    print("all five properties hold.")


if __name__ == "__main__":
    main()
