#!/usr/bin/env python
"""Admission control live: a polite feed and a firehose share a router.

The quickstart publishes synchronously — each frame goes straight into
the router's inbox, and nothing pushes back. This example puts the
ingress tier in front of the same fabric and drives it past capacity:

1. two publisher connections share one `IngressTier`; "polite" stays
   inside its token-bucket budget while "firehose" offers far more
   than its rate limit allows;
2. the bucket sheds the firehose's excess with reason `rate-limit`
   before it can crowd the shared bounded inbox; a burst into a small
   inbox then shows `queue-full` shedding too;
3. every tick the books balance exactly — offered equals accepted
   plus shed plus what is still queued — and at the end the ledger
   closes with offered == accepted + shed and every accepted envelope
   delivered to the matching subscriber exactly once;
4. the `ingress.*` metrics mirror the whole story, which is what a
   supervisor would watch in production.

Run with:  python examples/ingress_load.py
"""

from repro import (IngressConfig, IngressTier, MessageBus,
                   MetricsRegistry, SgxPlatform)
from repro.core import (Client, Publisher, Router, ScbrEnclaveLibrary,
                        ServiceProvider)
from repro.crypto.rsa import generate_keypair
from repro.sgx import AttestationService, EnclaveBuilder


def main() -> None:
    # -- the usual attested fabric, one router, one subscriber ----------
    registry = MetricsRegistry()
    bus = MessageBus(metrics=registry)
    platform = SgxPlatform()
    attestation_service = AttestationService()
    attestation_service.register_platform(platform)
    vendor_key = generate_keypair(1024)
    expected = EnclaveBuilder(platform, ScbrEnclaveLibrary).measure()
    router = Router(bus, platform, vendor_key, rsa_bits=1024,
                    metrics=registry)
    provider = ServiceProvider(bus, rsa_bits=1024,
                               attestation_service=attestation_service,
                               expected_mr_enclave=expected)
    provider.provision_router(router)

    alice = Client(bus, "alice", provider.keys.public_key)
    alice.process_admission(provider.admit_client("alice"))
    alice.subscribe("provider", {"symbol": "HAL"})
    provider.pump(router.name)
    router.pump()

    publisher = Publisher(bus, provider.keys, provider.group)

    # -- an ingress tier with a tight rate limit and a small inbox ------
    tier = IngressTier(router, IngressConfig(
        inbox_capacity=16, batch_size=4,
        rate_per_tick=3.0, burst=6.0, service_per_tick=4))
    polite = tier.connect("polite")
    firehose = tier.connect("firehose")

    def frame(tag: str, index: int) -> bytes:
        return publisher.make_publication(
            {"symbol": "HAL", "price": 42.0},
            b"%s-%03d" % (tag.encode(), index))

    print("tick  offered accepted   shed  queued   (invariant)")
    sent = 0
    for tick in range(10):
        for i in range(2):            # polite: 2/tick, inside budget
            polite.submit(frame("polite", sent + i))
        for i in range(8):            # firehose: 8/tick vs rate 3
            firehose.submit(frame("fire", sent + i))
        sent += 10
        tier.pump()
        balanced = tier.offered == tier.accepted + tier.shed \
            + tier.backlog
        print(f"{tick:4d} {tier.offered:8d} {tier.accepted:8d} "
              f"{tier.shed:6d} {tier.backlog:7d}   "
              f"{'exact' if balanced else 'BROKEN'}")
        assert balanced

    tier.drain()
    router.drain_retries()
    alice.pump()

    print("\nfinal ledger")
    print(f"  offered   {tier.offered}")
    print(f"  accepted  {tier.accepted}")
    print(f"  shed      {tier.shed}  by reason: "
          f"{dict(sorted(tier.shed_by_reason.items()))}")
    assert tier.offered == tier.accepted + tier.shed
    assert len(alice.received) == tier.accepted
    print(f"  delivered {len(alice.received)} "
          f"(every accepted envelope, exactly once)")

    snapshot = registry.snapshot()
    print("\nwhat a supervisor sees (ingress.* metrics)")
    for name in ("ingress.offered_total", "ingress.accepted_total",
                 "ingress.shed_total",
                 "ingress.shed_total{reason=rate-limit}",
                 "ingress.shed_total{reason=queue-full}",
                 "ingress.batches_total", "ingress.queue_depth"):
        if name in snapshot:
            print(f"  {name:42s} {snapshot[name]}")

    router.close()
    print("\nthe firehose paid for its own excess; "
          "the polite feed lost nothing.")


if __name__ == "__main__":
    main()
