#!/usr/bin/env python
"""Quickstart: secure pub/sub through an (simulated) SGX routing enclave.

The minimal end-to-end SCBR flow from the paper's Figure 4:

1. an attested routing enclave is provisioned with the symmetric key SK;
2. a client registers an encrypted subscription via the data provider;
3. the publisher sends encrypted publications; the enclave matches the
   decrypted headers against its containment index;
4. matched payloads are forwarded — the cloud router never sees
   subscription constraints, headers or payloads in plaintext.

Run with:  python examples/quickstart.py
"""

from repro import MessageBus, SgxPlatform
from repro.core import (Client, Publisher, Router, ScbrEnclaveLibrary,
                        ServiceProvider)
from repro.crypto.rsa import generate_keypair
from repro.sgx import AttestationService, EnclaveBuilder


def main() -> None:
    # -- infrastructure: one SGX machine in the cloud + Intel's service --
    bus = MessageBus()
    platform = SgxPlatform()
    attestation_service = AttestationService()
    attestation_service.register_platform(platform)

    # -- the enclave vendor signs the routing engine --------------------
    vendor_key = generate_keypair(bits=1024)
    expected_measurement = EnclaveBuilder(
        platform, ScbrEnclaveLibrary).measure()

    # -- the router (untrusted host) loads the enclave ------------------
    router = Router(bus, platform, vendor_key)
    print(f"router enclave MRENCLAVE = "
          f"{router.mr_enclave.hex()[:16]}...")

    # -- the data provider attests the enclave and provisions SK --------
    provider = ServiceProvider(
        bus, rsa_bits=1024,
        attestation_service=attestation_service,
        expected_mr_enclave=expected_measurement)
    provider.provision_router(router)
    print("attestation verified; SK provisioned into the enclave")

    publisher = Publisher(bus, provider.keys, provider.group)

    # -- a client subscribes (paper's running example) -------------------
    alice = Client(bus, "alice", provider.keys.public_key)
    alice.process_admission(provider.admit_client("alice"))
    alice.subscribe("provider", {"symbol": "HAL", "price": ("<", 50.0)})
    provider.pump("router")   # provider re-encrypts under SK + signs
    router.pump()             # router registers it inside the enclave
    print('alice subscribed: symbol = "HAL" AND price < 50')

    # -- publications flow -------------------------------------------------
    for price, note in ((48.5, b"HAL dipped below 50!"),
                        (55.0, b"HAL is expensive"),
                        (42.0, b"HAL bargain")):
        publisher.publish("router", {"symbol": "HAL", "price": price},
                          note)
    publisher.publish("router", {"symbol": "IBM", "price": 42.0},
                      b"IBM irrelevant to alice")
    router.pump()
    alice.pump()

    print(f"alice received {len(alice.received)} payloads:")
    for payload in alice.received:
        print(f"   {payload.decode()}")
    assert alice.received == [b"HAL dipped below 50!", b"HAL bargain"]

    stats = router.stats()
    print(f"enclave index: {stats['subscriptions']} subscription(s), "
          f"{stats['index_nodes']} node(s), "
          f"{stats['index_bytes']} modelled bytes")
    print(f"router delivered {stats['metrics']['router.deliveries_total']}"
          f" payloads, dead-lettered {stats['dead_letters']}")
    print(f"simulated platform time: "
          f"{platform.simulated_us():.1f} us")


if __name__ == "__main__":
    main()
