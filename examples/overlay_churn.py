#!/usr/bin/env python
"""The broker overlay under churn: nothing lost, nothing doubled.

`examples/overlay_routing.py` shows the overlay in fair weather; this
walkthrough takes the same five-broker tree through the failure modes
a real deployment meets:

1. a link is severed — matching publications are quarantined in the
   dead-letter queue under the ``link-down`` reason, and the overlay
   still settles *around* the partition;
2. the link heals — the quarantine drains exactly once, and the owed
   subscription advert ships as a size-priced delta (``SUMD``), not a
   reflood;
3. a broker joins live, is attested like a founder, and pulls the
   overlay's interest through anti-entropy;
4. a broker leaves cleanly — the only event that withdraws interest;
5. a seeded chaos soak interleaves sever/heal/join/crash with traffic
   and converges back to a settled overlay with an empty link-debt
   queue and the full published set delivered.

Run with:  python examples/overlay_churn.py
"""

import random

from repro.core.router import REASON_LINK_DOWN
from repro.crypto.rsa import generate_keypair
from repro.overlay import ChurnSchedule, OverlayNetwork, Topology


def totals(node, name):
    return int(node.metrics.counter(name).value)


def link_debt(network):
    return sum(1 for node in network.nodes.values()
               for letter in node.router.dead_letters
               if letter.reason == REASON_LINK_DOWN)


def main() -> None:
    topology = Topology.tree(5, seed=7)
    print(f"tree topology, brokers {', '.join(topology.brokers)}; "
          f"links: " + ", ".join(f"{a}~{b}"
                                 for a, b in topology.edges) + "\n")

    network = OverlayNetwork(topology, generate_keypair(bits=1024))
    far = topology.brokers[-1]
    entry = topology.brokers[0]
    network.client("alice", home=far, subscription={"symbol": "HAL"})
    # A broad covering set at alice's broker: with only one or two
    # entries the size-priced reconciler would (correctly) ship a full
    # advert, because the SUMD framing outweighs the saved entries.
    network.client("carol", home=far, subscription={"symbol": "IBM"})
    network.client("dave", home=far, subscription={"symbol": "GE"})
    network.settle()

    # -- 1. a partition quarantines, it does not lose -----------------
    # Cut the edge to alice's home so the publication genuinely needs
    # the severed link to reach her.
    cut = next(edge for edge in topology.edges if far in edge)
    network.sever_link(*cut)
    network.publish({"symbol": "HAL", "price": 9.0}, b"cut off",
                    at=entry)
    network.settle()          # settles *around* the partition
    print(f"severed {cut[0]}~{cut[1]}, published at {entry}: "
          f"alice has {network.deliveries().get('alice', [])!r}, "
          f"{link_debt(network)} frame(s) quarantined under "
          f"'link-down'.")
    print("the backlog report names the cut:\n  "
          + network.backlog_report().replace("\n", "\n  "))

    # -- 2. the heal requeues exactly once and reconciles by delta ----
    network.client("late", home=far, subscription={"symbol": "XRX"})
    network.settle()          # the advert for XRX is owed across the cut
    network.heal_link(*cut)
    network.settle()
    deltas = sum(totals(n, "reconcile.delta_adverts_total")
                 for n in network.nodes.values())
    requeued = sum(totals(n, "router.dead_letters_requeued_total")
                   for n in network.nodes.values())
    print(f"\nhealed {cut[0]}~{cut[1]}: alice = "
          f"{network.deliveries()['alice']!r} (requeued={requeued}, "
          f"link debt now {link_debt(network)}), and the owed XRX "
          f"interest crossed as {deltas} delta advert(s) — no "
          f"reflood.")
    assert network.deliveries()["alice"] == [b"cut off"]

    # -- 3. a live join: attested, then fed by anti-entropy -----------
    network.add_broker("b6", attach_to=(far,))
    network.settle()
    network.publish({"symbol": "HAL", "price": 11.0}, b"via joiner",
                    at="b6")
    network.settle()
    print(f"\nb6 joined at {far}, attested like a founder; a HAL "
          f"event entering at b6 still reaches alice: "
          f"{network.deliveries()['alice'][-1]!r}")

    # -- 4. a clean leave is the only interest withdrawal -------------
    network.remove_broker("b6")
    network.settle()
    print(f"b6 left cleanly; brokers now "
          f"{', '.join(sorted(network.nodes))} and its advert is "
          f"withdrawn everywhere.")

    # -- 5. seeded chaos: sever/heal/join/crash under traffic ---------
    rng = random.Random(42)
    schedule = ChurnSchedule(seed=42, max_down_links=1, max_events=10,
                             allow=("sever", "heal", "crash"))
    published = 0
    while True:
        event = schedule.draw(
            up_links=[e for e in network.link_buses
                      if e not in network.down_links()],
            down_links=network.down_links(),
            removable_brokers=[],
            crashable_brokers=sorted(network.nodes),
            can_join=False)
        if event is None:
            break
        kind, target = event
        if kind == "sever":
            network.sever_link(*target)
        elif kind == "heal":
            network.heal_link(*target)
        elif kind == "crash":
            network.crash_broker(target)
        network.publish({"symbol": "HAL",
                         "price": float(rng.randrange(100))},
                        b"soak %d" % published,
                        at=rng.choice(sorted(network.nodes)))
        published += 1
        for _ in range(schedule.next_gap()):
            network.pump_all(membership_active=True)
    for edge in network.down_links():
        network.heal_link(*edge)
    network.settle(max_rounds=512)
    got = sorted(network.deliveries()["alice"])
    want = sorted([b"cut off", b"via joiner"]
                  + [b"soak %d" % i for i in range(published)])
    crashes = sum(totals(n, "recovery.recoveries_total")
                  for n in network.nodes.values())
    print(f"\nchaos soak: {published} publications through "
          f"{schedule.events_drawn} churn events "
          f"({crashes} enclave recoveries); after the final heal the "
          f"overlay settled with link debt {link_debt(network)}.")
    assert got == want, "a payload was lost or doubled"
    print("alice's delivered multiset equals the published multiset — "
          "zero lost, zero duplicated.")

    network.close()
    print("\nthe same surface, driven harder and compared against the "
          "flat oracle, is what `python -m repro churn` measures and "
          "tests/overlay/test_partition.py pins per topology.")


if __name__ == "__main__":
    main()
