#!/usr/bin/env python
"""Stock ticker: the paper's financial-market motivating scenario.

A stock exchange (service provider) streams synthetic quotes to paying
clients with confidential portfolios. Demonstrates:

* realistic quote workload (the Table 1 generator);
* multiple clients with range/equality subscriptions (portfolios);
* a client who stops paying: revocation drops their subscriptions at
  the router and rotates the payload group key, so even replayed
  deliveries are useless to them;
* routing statistics from the enclave's containment index.

Run with:  python examples/stock_ticker.py
"""

import json

from repro import MessageBus, SgxPlatform
from repro.core import (Client, Publisher, Router, ScbrEnclaveLibrary,
                        ServiceProvider)
from repro.crypto.rsa import generate_keypair
from repro.matching.stats import forest_stats
from repro.sgx import AttestationService, EnclaveBuilder
from repro.workloads import generate_quotes


def main() -> None:
    bus = MessageBus()
    platform = SgxPlatform()
    attestation_service = AttestationService()
    attestation_service.register_platform(platform)
    vendor_key = generate_keypair(bits=1024)
    expected = EnclaveBuilder(platform, ScbrEnclaveLibrary).measure()

    router = Router(bus, platform, vendor_key)
    exchange = ServiceProvider(bus, name="exchange", rsa_bits=1024,
                               attestation_service=attestation_service,
                               expected_mr_enclave=expected)
    exchange.provision_router(router)
    feed = Publisher(bus, exchange.keys, exchange.group,
                     name="quote-feed")

    # -- three clients with confidential portfolios ----------------------
    portfolios = {
        "hedge-fund": [
            {"symbol": "HAL", "close": ("<", 60.0)},
            {"symbol": "XOM", "volume": (">", 1e5)},
        ],
        "pension-fund": [
            {"symbol": "IBM"},
            {"symbol": "GE", "change_pct": ("<", 0.0)},  # drops only
        ],
        "day-trader": [
            {"change_pct": (">", 1.5)},  # any big mover
        ],
    }
    clients = {}
    for name, subscriptions in portfolios.items():
        client = Client(bus, name, exchange.keys.public_key)
        client.process_admission(exchange.admit_client(name))
        for spec in subscriptions:
            client.subscribe("exchange", spec)
        clients[name] = client
    exchange.pump("router")
    router.pump()
    print(f"registered {router.registrations} subscriptions from "
          f"{len(clients)} clients")

    # -- stream a day of synthetic quotes ---------------------------------
    collection = generate_quotes(400, n_symbols=40, seed=99)
    for event in collection.events():
        payload = json.dumps(event.header).encode()
        feed.publish("router", event, payload)
    router.pump()
    for client in clients.values():
        client.pump()
    for name, client in clients.items():
        print(f"  {name:13s} received {len(client.received):4d} quotes")
    assert any(client.received for client in clients.values())

    # -- the day-trader stops paying ---------------------------------------
    print("revoking day-trader (subscription invalidation + "
          "group-key rotation)...")
    for frame in exchange.revoke_client("day-trader"):
        exchange.endpoint.send("router", [frame])
    router.pump()
    for name in ("hedge-fund", "pension-fund"):
        clients[name].pump()  # they receive the rotated key

    before = {name: len(client.received)
              for name, client in clients.items()}
    for event in generate_quotes(150, n_symbols=40, seed=100).events():
        feed.publish("router", event, json.dumps(event.header).encode())
    router.pump()
    for client in clients.values():
        client.pump()
    for name, client in clients.items():
        delta = len(client.received) - before[name]
        print(f"  {name:13s} +{delta} quotes after revocation "
              f"(undecryptable: {client.undecryptable})")
    assert len(clients["day-trader"].received) == before["day-trader"]

    # -- index shape: why containment matters ------------------------------
    stats = forest_stats(router.enclave._library._forest)
    print(f"enclave index shape: {stats.describe()}")
    print(f"simulated platform time: {platform.simulated_us():,.0f} us")


if __name__ == "__main__":
    main()
