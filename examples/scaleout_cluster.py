#!/usr/bin/env python
"""Scale-out: slicing the subscription database across enclaves.

The paper's conclusion offers horizontal scalability as the escape
hatch from both the EPC limit and matching latency (§3.4 advocates the
StreamHub architecture; "the current publisher-matcher key management
scheme could be simply replicated"). This example slices one workload
across 1, 2, 4 and 8 matcher enclaves and prints the latency curve and
the slice balance for both assignment policies.

Run with:  python examples/scaleout_cluster.py
"""

from repro.bench.report import format_table
from repro.core.cluster import MatcherCluster
from repro.sgx.cpu import scaled_spec
from repro.workloads import build_dataset

N_SUBSCRIPTIONS = 8000
N_PUBLICATIONS = 10


def main() -> None:
    spec = scaled_spec(llc_bytes=256 * 1024)
    dataset = build_dataset("e80a1", N_SUBSCRIPTIONS, N_PUBLICATIONS)
    print(f"workload e80a1, {N_SUBSCRIPTIONS} subscriptions, "
          f"{N_PUBLICATIONS} publications per point\n")

    rows = []
    reference = None
    for policy in MatcherCluster.ASSIGNMENTS:
        for n_slices in (1, 2, 4, 8):
            cluster = MatcherCluster(n_slices, spec=spec,
                                     assignment=policy)
            for index, subscription in enumerate(dataset.subscriptions):
                cluster.register(subscription, index)
            cluster.warm()
            for event in dataset.publications:   # warm-up
                cluster.match(event)
            latency = 0.0
            matches = []
            for event in dataset.publications:
                result = cluster.match(event)
                latency += result.latency_us
                matches.append(frozenset(result.subscribers))
            if reference is None:
                reference = matches
            assert matches == reference, "slicing changed the results!"
            sizes = cluster.slice_sizes()
            rows.append([policy, n_slices,
                         round(latency / N_PUBLICATIONS, 1),
                         f"{min(sizes)}-{max(sizes)}"])
    print(format_table(
        ["assignment", "slices", "us/publication", "slice sizes"],
        rows, title="cluster latency (max over parallel slices)"))
    print("\nresults identical across every configuration — slicing "
          "is transparent to subscribers.")


if __name__ == "__main__":
    main()
