#!/usr/bin/env python
"""Paging study: watch the EPC run out (Figure 8 in miniature).

Registers a growing subscription database into an enclave on a platform
with a deliberately small EPC, reading the paper's two instruments —
per-registration time and page-fault counters — at every step. Prints
the ratio table and an ASCII chart of the cliff.

Run with:  python examples/paging_study.py
"""

from repro.bench.experiments import bench_spec, run_fig8
from repro.bench.report import format_series_chart, format_table


def main() -> None:
    spec = bench_spec(epc=True)
    limit_mib = spec.epc_usable_bytes / (1024 * 1024)
    print(f"platform: LLC {spec.llc_bytes // 1024} KiB, EPC usable "
          f"{limit_mib:.0f} MiB (scaled from the paper's ~90 MB)")
    print("registering subscriptions inside vs outside the enclave...")

    points = run_fig8(n_subscriptions=16000, bin_count=12)

    rows = []
    ratio_series = {}
    for p in points:
        mib = p.db_bytes / (1024 * 1024)
        marker = "  <-- paging!" if mib > limit_mib else ""
        rows.append([f"{mib:.2f}",
                     f"{p.in_us_per_registration:.2f}",
                     f"{p.out_us_per_registration:.2f}",
                     f"{p.time_ratio_in_out:.1f}x" + marker,
                     p.in_faults, p.out_faults])
        ratio_series[mib] = p.time_ratio_in_out
    print(format_table(
        ["DB MiB", "in us/reg", "out us/reg", "in/out", "in faults",
         "out faults"], rows,
        title="registration cost, inside vs outside the enclave"))
    print()
    print(format_series_chart({"in/out time ratio": ratio_series},
                              logx=False,
                              title="the Fig. 8 cliff"))
    cliff = max(p.time_ratio_in_out for p in points)
    print(f"\npeak slowdown {cliff:.0f}x — the paper measured 18x at "
          f"213 MB against a 128 MB EPC; same mechanism, scaled "
          f"geometry.")


if __name__ == "__main__":
    main()
