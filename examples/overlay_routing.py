#!/usr/bin/env python
"""Overlay routing: many SCBR brokers behaving as one router.

The paper evaluates a single router; this example wires five of them —
each a full SCBR node with its own enclave, WAL and supervised
recovery — into a tree and walks the overlay story:

1. subscriptions registered at a client's *home* broker propagate as
   covering-compressed summary adverts, so remote brokers learn just
   enough to route;
2. a publication entering anywhere reaches exactly the subscribers a
   flat router would have delivered to, and the links whose downstream
   summary does not match are never paid;
3. a *covered* subscription (narrower than what its broker already
   advertised) is absorbed silently — no new advert crosses any link;
4. a broker enclave dies and is recovered from its WAL, remote
   interest included, without re-flooding the overlay.

Run with:  python examples/overlay_routing.py
"""

from repro.bench.report import format_table
from repro.crypto.rsa import generate_keypair
from repro.overlay import OverlayNetwork, Topology


def totals(node, name):
    return int(node.metrics.counter(name).value)


def main() -> None:
    topology = Topology.tree(5, seed=7)
    print(f"tree topology, brokers {', '.join(topology.brokers)}; "
          f"links: " + ", ".join(f"{a}~{b}"
                                 for a, b in topology.edges) + "\n")

    network = OverlayNetwork(topology, generate_keypair(bits=1024))
    entry = topology.brokers[0]
    far = topology.brokers[-1]

    # -- 1. interest propagates as summaries --------------------------
    network.client("alice", home=far, subscription={"symbol": "HAL"})
    network.client("bob", home=topology.brokers[1],
                   subscription={"symbol": "IBM",
                                 "price": ("<", 50.0)})
    rounds = network.settle()
    sent = sum(totals(n, "overlay.adverts_sent_total")
               for n in network.nodes.values())
    print(f"alice@{far} wants HAL, bob@{topology.brokers[1]} wants "
          f"cheap IBM; {sent} summary adverts settled the overlay "
          f"in {rounds} rounds.")

    # -- 2. publications only cross matching links --------------------
    network.publish({"symbol": "HAL", "price": 42.0},
                    b"HAL at 42", at=entry)
    network.publish({"symbol": "XRX", "price": 9.0},
                    b"nobody wants XRX", at=entry)
    network.settle()
    forwarded = sum(totals(n, "overlay.publications_forwarded_total")
                    for n in network.nodes.values())
    suppressed = sum(totals(n, "overlay.publications_suppressed_total")
                     for n in network.nodes.values())
    print(f"\ntwo publications entered at {entry}: "
          f"{network.deliveries()!r}")
    print(f"link crossings paid: {forwarded}; crossings the covering "
          f"gate suppressed: {suppressed} (the XRX event died at its "
          f"entry broker).")

    # -- 3. covered subscriptions are absorbed silently ---------------
    before = sum(totals(n, "overlay.adverts_sent_total")
                 for n in network.nodes.values())
    network.client("carol", home=far,
                   subscription={"symbol": "HAL",
                                 "price": ("<", 30.0)})
    network.settle()
    after = sum(totals(n, "overlay.adverts_sent_total")
                for n in network.nodes.values())
    print(f"\ncarol@{far} wants HAL below 30 — covered by alice's "
          f"advert: adverts sent {before} -> {after} (no new "
          f"traffic).")

    # -- 4. a broker dies; its WAL resurrects remote interest ---------
    victim = network.node(far)
    victim.router.enclave.destroy()
    victim.supervisor.recover()
    network.settle()
    recoveries = totals(victim, "recovery.recoveries_total")
    refreshed = sum(totals(n, "overlay.adverts_sent_total")
                    for n in network.nodes.values())
    network.publish({"symbol": "HAL", "price": 12.5},
                    b"HAL crashed too", at=entry)
    network.settle()
    deliveries = network.deliveries()
    print(f"\nkilled {far}'s enclave; recoveries={recoveries}, "
          f"adverts sent still {refreshed} (digest suppression — "
          f"recovery re-exports but re-sends nothing).")
    print(f"post-recovery HAL event delivered to "
          f"{sorted(c for c, p in deliveries.items() if p)}: "
          f"alice={deliveries['alice']!r}")
    assert deliveries["alice"][-1] == b"HAL crashed too"
    assert deliveries["carol"] == [b"HAL crashed too"]

    # -- the fleet, per broker ----------------------------------------
    rows = []
    for broker in topology.brokers:
        node = network.nodes[broker]
        rows.append([
            broker,
            totals(node, "overlay.adverts_sent_total"),
            totals(node, "overlay.adverts_suppressed_total"),
            totals(node, "overlay.publications_forwarded_total"),
            totals(node, "overlay.publications_suppressed_total"),
            totals(node, "recovery.recoveries_total"),
        ])
    print()
    print(format_table(
        ["broker", "adv sent", "adv saved", "pub fwd", "pub saved",
         "recoveries"],
        rows, title="per-broker overlay accounting"))
    network.close()
    print("\nevery delivery above is byte-identical to what one flat "
          "router would have produced — the equivalence suite in "
          "tests/overlay/ pins this across topologies and seeds.")


if __name__ == "__main__":
    main()
