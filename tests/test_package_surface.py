"""Package-surface tests: exports, error hierarchy, version."""

import importlib

import pytest

import repro
from repro import errors


class TestTopLevelExports:

    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.matching", "repro.sgx", "repro.aspe",
        "repro.crypto", "repro.network", "repro.workloads",
        "repro.bench", "repro.recovery",
    ])
    def test_subpackage_all_resolves(self, module):
        package = importlib.import_module(module)
        for name in package.__all__:
            assert getattr(package, name, None) is not None, \
                f"{module}.{name}"


class TestErrorHierarchy:

    def test_all_errors_are_scbr_errors(self):
        error_classes = [
            value for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        assert len(error_classes) >= 12
        for cls in error_classes:
            assert issubclass(cls, errors.ScbrError)

    def test_security_errors_grouped(self):
        assert issubclass(errors.AuthenticationError, errors.CryptoError)
        assert issubclass(errors.MemoryLockError, errors.SgxError)
        assert issubclass(errors.AttestationError, errors.SgxError)
        assert issubclass(errors.RollbackError, errors.SgxError)
        assert issubclass(errors.EnclaveError, errors.SgxError)
        assert issubclass(errors.EpcError, errors.SgxError)

    def test_catching_base_catches_everything(self):
        with pytest.raises(errors.ScbrError):
            raise errors.WorkloadError("x")
        with pytest.raises(errors.ScbrError):
            raise errors.MemoryLockError("y")


class TestDocstrings:

    @pytest.mark.parametrize("module", [
        "repro", "repro.core.engine", "repro.matching.poset",
        "repro.sgx.enclave", "repro.aspe.scheme",
        "repro.workloads.datasets", "repro.bench.experiments",
        "repro.recovery.wal", "repro.recovery.checkpoint",
        "repro.recovery.supervisor",
    ])
    def test_key_modules_documented(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__ and len(imported.__doc__) > 80

    def test_public_classes_documented(self):
        from repro.core.engine import ScbrEnclaveLibrary
        from repro.matching.poset import ContainmentForest
        from repro.sgx.platform import SgxPlatform
        for cls in (ScbrEnclaveLibrary, ContainmentForest, SgxPlatform):
            assert cls.__doc__
            for name, member in vars(cls).items():
                if callable(member) and not name.startswith("_"):
                    assert member.__doc__, f"{cls.__name__}.{name}"
