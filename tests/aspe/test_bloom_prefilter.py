"""Bloom filter and the equality pre-filter over ASPE."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.aspe.bloom import BloomFilter
from repro.aspe.prefilter import (PrefilteredAspeMatcher, event_bloom,
                                  subscription_bloom)
from repro.aspe.matcher import AspeMatcher
from repro.aspe.scheme import AspeScheme, AttributeSchema
from repro.matching.events import Event
from repro.matching.subscriptions import Subscription


class TestBloomFilter:

    def test_no_false_negatives(self):
        bloom = BloomFilter()
        for token in ("a", "b", "c"):
            bloom.add(token)
        assert all(bloom.might_contain(t) for t in ("a", "b", "c"))

    def test_definitely_absent(self):
        bloom = BloomFilter(bits=1024)  # large: negligible FP here
        bloom.add("present")
        assert not bloom.might_contain("absent")

    def test_subset(self):
        small = BloomFilter()
        big = BloomFilter()
        for token in ("a", "b"):
            big.add(token)
        small.add("a")
        assert small.subset_of(big)
        assert not big.subset_of(small)

    def test_empty_is_subset_of_everything(self):
        assert BloomFilter().subset_of(BloomFilter())

    def test_incompatible_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=128).subset_of(BloomFilter(bits=256))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=100)  # not a power of two
        with pytest.raises(ValueError):
            BloomFilter(n_hashes=0)

    @given(st.sets(st.text(min_size=1, max_size=8), max_size=20))
    def test_popcount_bounded(self, tokens):
        bloom = BloomFilter(bits=256, n_hashes=3)
        for token in tokens:
            bloom.add(token)
        assert bloom.popcount <= min(256, 3 * len(tokens))
        for token in tokens:
            assert bloom.might_contain(token)


class TestPrefilteredMatching:

    def _setup(self):
        schema = AttributeSchema(("symbol", "price"), {})
        scheme = AspeScheme(schema, np.random.default_rng(3))
        matcher = PrefilteredAspeMatcher(scheme.cipher_dimension)
        return scheme, matcher

    def test_agrees_with_plain_aspe(self):
        scheme, prefiltered = self._setup()
        plain = AspeMatcher(scheme.cipher_dimension)
        subs = [Subscription.parse({"symbol": s, "price": (lo, lo + 10)})
                for s in ("HAL", "IBM", "GE")
                for lo in (0.0, 20.0, 40.0)]
        for index, sub in enumerate(subs):
            encrypted = scheme.encrypt_subscription(sub)
            prefiltered.register(encrypted, index)
            plain.register(encrypted, index)
        for symbol in ("HAL", "IBM", "XOM"):
            for price in (5.0, 25.0, 100.0):
                event = Event({"symbol": symbol, "price": price})
                point = scheme.encrypt_event(event)
                got = prefiltered.match(point, event_bloom(scheme,
                                                           event))
                expected = plain.match(point)
                assert got.subscribers == expected.subscribers

    def test_prunes_non_candidates(self):
        scheme, matcher = self._setup()
        sub = Subscription.parse({"symbol": "HAL",
                                  "price": (0.0, 10.0)})
        matcher.register(scheme.encrypt_subscription(sub), "c")
        event = Event({"symbol": "IBM", "price": 5.0})
        result = matcher.match(scheme.encrypt_event(event),
                               event_bloom(scheme, event))
        assert result.subscriptions_tested == 0
        assert result.halfspaces_tested == 0

    def test_range_only_subscriptions_always_tested(self):
        scheme, matcher = self._setup()
        sub = Subscription.parse({"price": (0.0, 10.0)})
        matcher.register(scheme.encrypt_subscription(sub), "c")
        event = Event({"symbol": "ANY", "price": 5.0})
        result = matcher.match(scheme.encrypt_event(event),
                               event_bloom(scheme, event))
        assert result.subscriptions_tested == 1
        assert result.subscribers == {"c"}

    def test_subscription_bloom_only_equalities(self):
        scheme, _ = self._setup()
        sub = Subscription.parse({"symbol": "HAL",
                                  "price": (0.0, 10.0)})
        bloom = subscription_bloom(scheme.encrypt_subscription(sub))
        assert bloom.popcount > 0
        range_only = Subscription.parse({"price": (0.0, 10.0)})
        assert subscription_bloom(
            scheme.encrypt_subscription(range_only)).popcount == 0


class TestPrefilterEdges:

    def _setup(self):
        schema = AttributeSchema(("symbol", "price"), {})
        scheme = AspeScheme(schema, np.random.default_rng(3))
        matcher = PrefilteredAspeMatcher(scheme.cipher_dimension)
        return scheme, matcher

    def test_empty_matcher_answers_instead_of_crashing(self):
        """Regression: matching before any registration used to die in
        the row-matrix compile (np.concatenate over zero tables)."""
        scheme, matcher = self._setup()
        event = Event({"symbol": "HAL", "price": 5.0})
        result = matcher.match(scheme.encrypt_event(event),
                               event_bloom(scheme, event))
        assert result.subscribers == set()
        assert result.subscriptions_tested == 0
        assert result.halfspaces_tested == 0
        assert result.simulated_us == 0.0

    def test_registration_after_match_recompiles(self):
        """The compiled row matrix is invalidated by registration, not
        rebuilt eagerly: a register -> match -> register -> match cycle
        must see the late subscription."""
        scheme, matcher = self._setup()
        event = Event({"symbol": "HAL", "price": 5.0})
        point = scheme.encrypt_event(event)
        bloom = event_bloom(scheme, event)
        first = Subscription.parse({"symbol": "HAL",
                                    "price": (0.0, 10.0)})
        matcher.register(scheme.encrypt_subscription(first), "early")
        assert matcher.match(point, bloom).subscribers == {"early"}
        late = Subscription.parse({"symbol": "HAL",
                                   "price": (0.0, 50.0)})
        matcher.register(scheme.encrypt_subscription(late), "late")
        assert matcher.match(point, bloom).subscribers \
            == {"early", "late"}

    def test_false_positive_rate_bounded_no_false_negatives(self):
        """Seeded FP bound: 200 non-matching equality subscriptions
        against one event; the Bloom parameters (256 bits, 3 hashes,
        a handful of tokens) put the per-subscription FP probability
        around (6/256)^3 ~ 1e-5, so a 1% observed candidate rate is a
        generous ceiling. The one genuinely matching subscription must
        always be a candidate: subset tests have no false negatives."""
        scheme, matcher = self._setup()
        for index in range(200):
            decoy = Subscription.parse({"symbol": f"S{index}",
                                        "price": (0.0, 10.0)})
            matcher.register(scheme.encrypt_subscription(decoy),
                             f"decoy-{index}")
        needle = Subscription.parse({"symbol": "QQQ",
                                     "price": (0.0, 10.0)})
        matcher.register(scheme.encrypt_subscription(needle), "needle")
        event = Event({"symbol": "QQQ", "price": 5.0})
        result = matcher.match(scheme.encrypt_event(event),
                               event_bloom(scheme, event))
        assert result.subscribers == {"needle"}
        assert result.subscriptions_tested >= 1  # no false negatives
        assert result.subscriptions_tested <= 1 + 2  # FP rate <= 1%
