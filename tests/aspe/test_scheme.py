"""ASPE scheme tests: correctness of encrypted sign tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aspe.matcher import AspeMatcher
from repro.aspe.matrix import AspeKey, random_invertible
from repro.aspe.scheme import (AspeScheme, AttributeSchema,
                               equality_token)
from repro.errors import CryptoError, MatchingError
from repro.matching.events import Event
from repro.matching.subscriptions import Subscription


@pytest.fixture()
def scheme():
    schema = AttributeSchema(("symbol", "price", "volume"),
                             {"volume": 1e5})
    return AspeScheme(schema, np.random.default_rng(1234))


class TestMatrix:

    def test_inverse_correct(self):
        matrix, inverse = random_invertible(8,
                                            np.random.default_rng(0))
        assert np.allclose(matrix @ inverse, np.eye(8), atol=1e-9)

    def test_bad_dimension(self):
        with pytest.raises(CryptoError):
            random_invertible(0)

    def test_scalar_product_preserved(self):
        rng = np.random.default_rng(0)
        key = AspeKey(6, rng)
        x = rng.standard_normal(6)
        q = rng.standard_normal(6)
        c = key.encrypt_point(x, 1.5)
        e = key.encrypt_query(q, 2.0)
        assert np.isclose(c @ e, 3.0 * (x @ q))

    def test_positive_scales_enforced(self):
        key = AspeKey(4)
        with pytest.raises(CryptoError):
            key.encrypt_point(np.zeros(4), 0.0)
        with pytest.raises(CryptoError):
            key.encrypt_query(np.zeros(4), -1.0)


class TestSchema:

    def test_validation(self):
        with pytest.raises(MatchingError):
            AttributeSchema(())
        with pytest.raises(MatchingError):
            AttributeSchema(("a", "a"))
        with pytest.raises(MatchingError):
            AttributeSchema(("a",), {"a": 0.0})

    def test_index_lookup(self):
        schema = AttributeSchema(("a", "b"))
        assert schema.index_of("b") == 1
        with pytest.raises(MatchingError):
            schema.index_of("zz")

    def test_from_events_derives_scales(self):
        events = [Event({"a": 1e6, "b": 2.0})]
        schema = AttributeSchema.from_events(("a", "b"), events)
        assert schema.scale_of("a") == pytest.approx(1e4)
        assert schema.scale_of("b") == 1.0


class TestEncryptedMatching:

    def _match(self, scheme, subscription, event):
        matcher = AspeMatcher(scheme.cipher_dimension)
        matcher.register(scheme.encrypt_subscription(subscription),
                         "client")
        return matcher.match(
            scheme.encrypt_event(event)).subscribers == {"client"}

    def test_range_semantics(self, scheme):
        sub = Subscription.parse({"price": (10.0, 20.0)})
        base = {"symbol": "HAL", "volume": 1e6}
        assert self._match(scheme, sub, Event({**base, "price": 15.0}))
        assert self._match(scheme, sub, Event({**base, "price": 10.0}))
        assert self._match(scheme, sub, Event({**base, "price": 20.0}))
        assert not self._match(scheme, sub,
                               Event({**base, "price": 20.01}))
        assert not self._match(scheme, sub,
                               Event({**base, "price": 9.99}))

    def test_strict_bounds(self, scheme):
        sub = Subscription.parse({"price": ("<", 50.0)})
        base = {"symbol": "HAL", "volume": 1e6}
        assert self._match(scheme, sub, Event({**base, "price": 49.99}))
        assert not self._match(scheme, sub,
                               Event({**base, "price": 50.0}))

    def test_string_equality(self, scheme):
        sub = Subscription.parse({"symbol": "HAL"})
        base = {"price": 1.0, "volume": 1e6}
        assert self._match(scheme, sub, Event({**base,
                                               "symbol": "HAL"}))
        assert not self._match(scheme, sub, Event({**base,
                                                   "symbol": "IBM"}))

    def test_missing_attribute_raises_without_fill(self, scheme):
        with pytest.raises(MatchingError):
            scheme.encrypt_event(Event({"symbol": "HAL", "price": 1.0}))

    def test_missing_attribute_sentinel(self):
        schema = AttributeSchema(("a", "b"))
        scheme = AspeScheme(schema, np.random.default_rng(0),
                            fill_missing=True)
        sub = Subscription.parse({"b": (0.0, 10.0)})
        matcher = AspeMatcher(scheme.cipher_dimension)
        matcher.register(scheme.encrypt_subscription(sub), "c")
        # b missing -> sentinel far outside the range -> no match.
        point = scheme.encrypt_event(Event({"a": 1.0}))
        assert matcher.match(point).subscribers == set()

    def test_exclusions_rejected(self, scheme):
        from repro.matching.predicates import Op, Predicate
        sub = Subscription.of(Predicate("price", Op.NE, 5.0))
        with pytest.raises(MatchingError):
            scheme.encrypt_subscription(sub)

    def test_unconstrained_subscription_rejected(self, scheme):
        from repro.matching.predicates import Op, Predicate
        sub = Subscription.of(Predicate("price", Op.EXISTS))
        with pytest.raises(MatchingError):
            scheme.encrypt_subscription(sub)

    def test_ciphertexts_randomised(self, scheme):
        event = Event({"symbol": "HAL", "price": 1.0, "volume": 1e6})
        a = scheme.encrypt_event(event).vector
        b = scheme.encrypt_event(event).vector
        assert not np.allclose(a, b)

    def test_ciphertext_hides_plaintext_coordinates(self, scheme):
        event = Event({"symbol": "HAL", "price": 42.0, "volume": 1e6})
        vector = scheme.encrypt_event(event).vector
        assert not np.any(np.isclose(vector, 42.0))

    def test_dimension_mismatch_rejected(self, scheme):
        other = AspeScheme(AttributeSchema(("a",)),
                           np.random.default_rng(0))
        matcher = AspeMatcher(scheme.cipher_dimension)
        sub = Subscription.parse({"a": (0.0, 1.0)})
        with pytest.raises(MatchingError):
            matcher.register(other.encrypt_subscription(sub), "c")


class TestAgreementWithPlaintext:
    """ASPE agrees with plaintext matching on realistic value grids.

    ASPE's sign tests cannot resolve margins below the rounding-error
    tolerance (~1e-9 of the coordinate scale): a bound of 6.2e-207 is
    indistinguishable from 0.0 through the encrypted transform. Values
    are therefore drawn from a cent grid (two decimals), matching the
    quote workloads; the module docstring documents the limit.
    """

    cents = st.integers(min_value=0, max_value=10000).map(
        lambda c: c / 100.0)

    @settings(max_examples=40, deadline=None)
    @given(cents, cents, cents)
    def test_encrypted_equals_plaintext_decision(self, lo, hi, value):
        if lo > hi:
            lo, hi = hi, lo
        schema = AttributeSchema(("price",))
        scheme = AspeScheme(schema, np.random.default_rng(99))
        sub = Subscription.parse({"price": (lo, hi)})
        event = Event({"price": value})
        matcher = AspeMatcher(scheme.cipher_dimension)
        matcher.register(scheme.encrypt_subscription(sub), "c")
        encrypted = matcher.match(
            scheme.encrypt_event(event)).subscribers == {"c"}
        assert encrypted == sub.matches(event)


class TestEqualityToken:

    def test_string_numeric_disjoint(self):
        assert equality_token("a", "1") != equality_token("a", 1)

    def test_attribute_scoped(self):
        assert equality_token("a", 1) != equality_token("b", 1)
