"""Match memo + hot-path work reduction: correctness and savings.

Covers the generation-stamped :class:`MatchMemo` (churn safety, FIFO
eviction, lazy stale drop), the engine-level wiring (hits skip the
traversal entirely, counters/metrics account for it), and the headline
work-reduction claim: on the Zipf-skewed ``e100a1zz100`` workload the
memo plus the per-root attribute gate cut predicate evaluations by at
least 20% versus the ungated, memo-less baseline — measured with the
same :class:`MatchCounters` both engines carry.
"""

import numpy as np
import pytest

from repro.matching.events import Event
from repro.matching.matcher import MatchingEngine, MatchMemo
from repro.matching.subscriptions import Subscription
from repro.sgx.cpu import scaled_spec
from repro.sgx.platform import SgxPlatform
from repro.workloads.datasets import build_dataset
from repro.workloads.zipf import ZipfSampler

SPEC = scaled_spec(llc_bytes=256 * 1024)


def _engine(**kwargs):
    platform = SgxPlatform(spec=SPEC)
    return MatchingEngine(platform, enclave=True, **kwargs)


class TestMatchMemoUnit:

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MatchMemo(0)

    def test_fifo_eviction(self):
        memo = MatchMemo(2)
        memo.store(("a",), frozenset({"x"}))
        memo.store(("b",), frozenset({"y"}))
        memo.store(("c",), frozenset({"z"}))  # evicts ("a",)
        assert memo.evictions == 1
        assert memo.lookup(("a",)) is None
        assert memo.lookup(("b",)) == frozenset({"y"})
        assert len(memo) == 2

    def test_bump_invalidates_lazily(self):
        memo = MatchMemo(4)
        memo.store(("a",), frozenset({"x"}))
        memo.bump()
        assert memo.lookup(("a",)) is None   # stale, dropped on touch
        assert len(memo) == 0
        assert memo.invalidation_bumps == 1

    def test_restore_overwrites_stale_entry(self):
        memo = MatchMemo(4)
        memo.store(("a",), frozenset({"x"}))
        memo.bump()
        memo.store(("a",), frozenset({"y"}))
        assert memo.lookup(("a",)) == frozenset({"y"})


class TestEngineMemo:

    def test_hit_skips_traversal(self):
        engine = _engine(memo_capacity=16)
        engine.register(Subscription.parse({"x": (0, 10)}), "alice")
        event = Event({"x": 5})
        first = engine.match(event)
        second = engine.match(event)
        assert first.subscribers == second.subscribers == {"alice"}
        assert second.nodes_visited == 0
        assert second.predicates_evaluated == 0
        assert second.simulated_us == 0.0
        assert engine.counters.memo_hits == 1
        assert engine.metrics.get(
            "matching.memo_hits_total").value == 1

    def test_churn_never_serves_stale_sets(self):
        """register -> match (memoised) -> unregister -> match."""
        engine = _engine(memo_capacity=16)
        sub = Subscription.parse({"symbol": "HAL"})
        engine.register(sub, "alice")
        event = Event({"symbol": "HAL"})
        assert engine.match(event).subscribers == {"alice"}
        assert engine.match(event).subscribers == {"alice"}  # hit
        assert engine.unregister(sub, "alice")
        assert engine.match(event).subscribers == set()
        engine.register(sub, "bob")
        assert engine.match(event).subscribers == {"bob"}

    def test_eviction_bounds_memory(self):
        engine = _engine(memo_capacity=4)
        engine.register(Subscription.parse({"x": (0, 100)}), "a")
        for value in range(10):
            engine.match(Event({"x": value}))
        assert len(engine.memo) == 4
        assert engine.memo.evictions == 6

    def test_memo_off_by_default(self):
        engine = _engine()
        assert engine.memo is None
        engine.register(Subscription.parse({"x": 1}), "a")
        event = Event({"x": 1})
        first = engine.match(event)
        second = engine.match(event)
        # No memo: both matches traverse and charge simulated time.
        assert second.nodes_visited == first.nodes_visited > 0


class TestWorkReduction:

    def test_zipf_workload_cuts_predicate_evaluations(self):
        """Memo + root gates save >=20% evaluations on e100a1zz100."""
        dataset = build_dataset("e100a1zz100", 1500, 200)
        # Zipf-skew the *event stream*: popular headers repeat, which
        # is the regime the paper's workload tables model (zz100) and
        # the regime the memo exploits.
        sampler = ZipfSampler(len(dataset.publications), exponent=1.0,
                              rng=np.random.default_rng(42))
        stream = [dataset.publications[sampler.sample_index()]
                  for _ in range(600)]

        baseline = _engine(root_gate=False)          # no gate, no memo
        optimised = _engine(memo_capacity=256)       # gate + memo
        for index, subscription in enumerate(dataset.subscriptions):
            baseline.register(subscription, index)
            optimised.register(subscription, index)

        for event in stream:
            a = baseline.match(event)
            b = optimised.match(event)
            assert a.subscribers == b.subscribers

        evals_baseline = baseline.counters.predicates_evaluated
        evals_optimised = optimised.counters.predicates_evaluated
        assert evals_baseline > 0
        saving = 1.0 - evals_optimised / evals_baseline
        assert saving >= 0.20, (
            f"only {saving:.1%} predicate evaluations saved "
            f"({evals_optimised} vs {evals_baseline})")
        # On this workload the memo is the working mechanism (its
        # 1-attribute equality subscriptions constrain attributes the
        # quotes nearly always carry, so the gate rarely fires).
        assert optimised.counters.memo_hits > 0

    def test_root_gate_fires_on_extended_subscriptions(self):
        """extsub subscriptions add attributes events often lack; the
        per-root gate skips those trees and saves evaluations."""
        dataset = build_dataset("extsub4", 400, 60)
        gated = _engine(root_gate=True)
        ungated = _engine(root_gate=False)
        for index, subscription in enumerate(dataset.subscriptions):
            gated.register(subscription, index)
            ungated.register(subscription, index)
        for event in dataset.publications:
            assert gated.match(event).subscribers == \
                ungated.match(event).subscribers
        assert gated.counters.roots_gated > 0
        assert gated.counters.predicates_evaluated < \
            ungated.counters.predicates_evaluated

    def test_root_gate_alone_is_exact(self):
        """Gating changes work counters, never the match set."""
        dataset = build_dataset("e80a2", 400, 60)
        gated = _engine(root_gate=True)
        ungated = _engine(root_gate=False)
        for index, subscription in enumerate(dataset.subscriptions):
            gated.register(subscription, index)
            ungated.register(subscription, index)
        for event in dataset.publications:
            assert gated.match(event).subscribers == \
                ungated.match(event).subscribers
        assert gated.counters.predicates_evaluated <= \
            ungated.counters.predicates_evaluated
