"""Columnar match plane: compilation, invalidation, trace accounting.

The differential suite proves the plane agrees with the other six
matcher implementations; this file pins the plane's own contract — the
generation-stamped compile/invalidate lifecycle, the per-shape table
placement, the modelled column memory (alloc on compile, free on
recompile and release), and the error paths.
"""

import pytest

from repro.errors import MatchingError
from repro.matching.columnar import (MATCHER_BACKENDS,
                                     ColumnarMatchPlane,
                                     validate_backend)
from repro.matching.events import Event
from repro.matching.poset import ContainmentForest
from repro.matching.predicates import Op, Predicate
from repro.matching.subscriptions import Subscription
from repro.sgx.cpu import scaled_spec
from repro.sgx.memory import MemorySubsystem


def sub(*predicates):
    return Subscription.of(*predicates)


def make_traced():
    memory = MemorySubsystem(scaled_spec(llc_bytes=256 * 1024))
    arena = memory.new_arena(enclave=True, name="columnar")
    forest = ContainmentForest(arena=arena)
    return memory, arena, forest, ColumnarMatchPlane(forest,
                                                     arena=arena)


class TestBackendNames:

    def test_known_backends(self):
        assert MATCHER_BACKENDS == ("forest", "columnar")
        for name in MATCHER_BACKENDS:
            assert validate_backend(name) == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(MatchingError):
            validate_backend("vectorized")


class TestLifecycle:

    def test_lazy_compile_and_generation_invalidation(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        assert plane.compilations == 0
        forest.insert(sub(Predicate("x", Op.GE, 1)), "a")
        assert plane.match(Event({"x": 5})) == {"a"}
        assert plane.compilations == 1
        # No registration change: further matches reuse the build.
        assert plane.match(Event({"x": 0})) == set()
        assert plane.compilations == 1
        # Any insert bumps the forest generation -> one recompile.
        forest.insert(sub(Predicate("x", Op.GE, 3)), "b")
        assert plane.match(Event({"x": 5})) == {"a", "b"}
        assert plane.compilations == 2
        # Removal invalidates too.
        forest.remove_subscriber(sub(Predicate("x", Op.GE, 1)), "a")
        assert plane.match(Event({"x": 5})) == {"b"}
        assert plane.compilations == 3

    def test_failed_removal_does_not_invalidate(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("x", Op.GE, 1)), "a")
        plane.match(Event({"x": 5}))
        assert not forest.remove_subscriber(
            sub(Predicate("x", Op.GE, 1)), "ghost")
        plane.match(Event({"x": 5}))
        assert plane.compilations == 1

    def test_idempotent_reregistration_still_invalidates(self):
        # Re-registering may extend a node's subscriber set; the plane
        # holds live references, but the generation bump keeps the
        # compiled node list in lockstep with the forest regardless.
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("x", Op.GE, 1)), "a")
        assert plane.match(Event({"x": 5})) == {"a"}
        forest.insert(sub(Predicate("x", Op.GE, 1)), "b")
        assert plane.match(Event({"x": 5})) == {"a", "b"}

    def test_empty_forest_and_empty_batch(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        assert plane.match(Event({"x": 1})) == set()
        assert plane.match_batch([]) == []
        assert plane.n_subscription_nodes == 0
        assert plane.n_attributes == 0


class TestTablePlacement:
    """Each constraint shape must land in — and be answered by — the
    intended table, covered here via shapes that would misfire if
    placed wrong."""

    def test_equality_buckets_numeric_and_string(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("x", Op.EQ, 5)), "num")
        forest.insert(sub(Predicate("x", Op.EQ, "five")), "str")
        assert plane.match(Event({"x": 5})) == {"num"}
        assert plane.match(Event({"x": 5.0})) == {"num"}
        assert plane.match(Event({"x": "five"})) == {"str"}
        assert plane.match(Event({"x": 4})) == set()

    def test_one_sided_bounds_open_and_closed(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("x", Op.GE, 5)), "ge")
        forest.insert(sub(Predicate("x", Op.GT, 5)), "gt")
        forest.insert(sub(Predicate("x", Op.LE, 5)), "le")
        forest.insert(sub(Predicate("x", Op.LT, 5)), "lt")
        assert plane.match(Event({"x": 5})) == {"ge", "le"}
        assert plane.match(Event({"x": 6})) == {"ge", "gt"}
        assert plane.match(Event({"x": 4})) == {"le", "lt"}
        # A string value must not enter the numeric bound lists.
        assert plane.match(Event({"x": "5"})) == set()

    def test_two_sided_ranges(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("x", Op.RANGE, (2, 8))), "wide")
        forest.insert(sub(Predicate("x", Op.RANGE, (4, 6))), "narrow")
        forest.insert(sub(Predicate("x", Op.RANGE, (7, 9))), "high")
        assert plane.match(Event({"x": 5})) == {"wide", "narrow"}
        assert plane.match(Event({"x": 8})) == {"wide", "high"}
        assert plane.match(Event({"x": 1})) == set()

    def test_exists_matches_any_present_value(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("x", Op.EXISTS)), "e")
        assert plane.match(Event({"x": 3})) == {"e"}
        assert plane.match(Event({"x": "s"})) == {"e"}
        assert plane.match(Event({"y": 3})) == set()

    def test_exclusions_and_string_wildcards_via_residual(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("x", Op.NE, 5)), "ne")
        forest.insert(sub(Predicate("x", Op.GE, 0),
                          Predicate("x", Op.NE, 3)), "bounded-ne")
        forest.insert(sub(Predicate("s", Op.EQ, "a"),
                          Predicate("s", Op.NE, "b")), "pin")
        assert plane.match(Event({"x": 4})) == {"ne", "bounded-ne"}
        assert plane.match(Event({"x": 5})) == {"bounded-ne"}
        assert plane.match(Event({"x": 3})) == {"ne"}
        assert plane.match(Event({"x": "s"})) == {"ne"}
        assert plane.match(Event({"s": "a"})) == {"pin"}

    def test_multi_attribute_conjunction_counts_to_arity(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("a", Op.GE, 1),
                          Predicate("b", Op.EQ, "x"),
                          Predicate("c", Op.RANGE, (0, 9))), "all3")
        assert plane.match(Event({"a": 2, "b": "x", "c": 5})) == \
            {"all3"}
        # Any one missing or failing attribute breaks the conjunction.
        assert plane.match(Event({"a": 2, "b": "x"})) == set()
        assert plane.match(Event({"a": 0, "b": "x", "c": 5})) == set()
        assert plane.match(Event({"a": 2, "b": "y", "c": 5})) == set()


class TestTraceAccounting:

    def test_traced_requires_arena(self):
        plane = ColumnarMatchPlane(ContainmentForest())
        with pytest.raises(MatchingError):
            plane.match_batch_traced([Event({"x": 1})])

    def test_traced_counts_and_runs(self):
        memory, _arena, forest, plane = make_traced()
        for index in range(8):
            forest.insert(sub(Predicate("x", Op.GE, index)), index)
        before = memory.snapshot()
        sets, visited, consulted = plane.match_batch_traced(
            [Event({"x": 3}), Event({"x": 100}), Event({"y": 1})])
        delta = memory.snapshot().delta(before)
        assert sets[0] == {0, 1, 2, 3}
        assert sets[1] == set(range(8))
        assert sets[2] == set()
        assert visited[0] == 4 and visited[1] == 8 and visited[2] == 0
        # Consulted = bound-list entries admitted by the bisect probe;
        # the event without the attribute consults nothing.
        assert consulted[2] == 0
        assert delta.llc_misses > 0      # column + accumulator traffic

    def test_column_blocks_freed_on_recompile(self):
        _memory, arena, forest, plane = make_traced()
        for index in range(16):
            forest.insert(sub(Predicate("x", Op.GE, index)), index)
        plane.match_batch_traced([Event({"x": 1})])
        held_once = arena.live_bytes
        # Churn and recompile several times: the *live* modelled
        # footprint must not grow with the number of recompiles (the
        # freelist recycles the column blocks).
        for round_ in range(4):
            forest.insert(sub(Predicate("y", Op.GE, round_)), "extra")
            forest.remove_subscriber(
                sub(Predicate("y", Op.GE, round_)), "extra")
            plane.match_batch_traced([Event({"x": 1})])
        assert arena.live_bytes == held_once
        assert arena.reused_blocks > 0

    def test_release_frees_everything_it_allocated(self):
        _memory, arena, forest, plane = make_traced()
        forest.insert(sub(Predicate("x", Op.GE, 1)), "a")
        base = arena.live_bytes            # forest nodes only
        plane.match_batch_traced([Event({"x": 2})])
        assert arena.live_bytes > base
        plane.release()
        assert arena.live_bytes == base
        # Released plane recompiles on the next use.
        assert plane.match(Event({"x": 2})) == {"a"}

    def test_column_bytes_scales_with_entries(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        forest.insert(sub(Predicate("x", Op.GE, 1)), "a")
        small = plane.column_bytes
        for index in range(20):
            forest.insert(sub(Predicate("x", Op.GE, index),
                              Predicate("y", Op.LE, index)), index)
        assert plane.column_bytes > small


class TestArityCap:

    def test_256_constraints_rejected(self):
        forest = ContainmentForest()
        plane = ColumnarMatchPlane(forest)
        wide = Subscription.of(*[
            Predicate(f"a{index}", Op.GE, index)
            for index in range(256)])
        forest.insert(wide, "wide")
        with pytest.raises(MatchingError):
            plane.match(Event({"a0": 1}))
