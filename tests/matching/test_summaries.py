"""Summary-node (merging) layer tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MatchingError
from repro.matching.events import Event
from repro.matching.poset import ContainmentForest
from repro.matching.predicates import Op, Predicate
from repro.matching.subscriptions import Subscription
from repro.matching.summaries import SummarizedForest, hull_subscription


def sub(spec):
    return Subscription.parse(spec)


class TestHull:

    def test_interval_hull(self):
        hull = hull_subscription([sub({"x": (0, 10)}),
                                  sub({"x": (5, 20)})])
        constraint = dict(hull.items)["x"]
        assert constraint.lo == 0 and constraint.hi == 20

    def test_hull_covers_members(self):
        members = [sub({"x": (0, 10), "y": (1, 2)}),
                   sub({"x": (5, 20), "y": (0, 9)}),
                   sub({"x": (-3, 4), "y": (2, 3)})]
        hull = hull_subscription(members)
        for member in members:
            assert hull.covers(member)

    def test_common_symbol_retained(self):
        hull = hull_subscription([
            sub({"symbol": "HAL", "price": (0, 10)}),
            sub({"symbol": "HAL", "price": (50, 60)})])
        assert dict(hull.items)["symbol"].equals == "HAL"

    def test_conflicting_symbols_drop_attribute(self):
        hull = hull_subscription([
            sub({"symbol": "HAL", "price": (0, 10)}),
            sub({"symbol": "IBM", "price": (5, 20)})])
        assert "symbol" not in dict(hull.items)
        assert "price" in dict(hull.items)

    def test_disjoint_attributes_no_hull(self):
        assert hull_subscription([sub({"x": (0, 1)}),
                                  sub({"y": (0, 1)})]) is None

    def test_open_bounds_kept_safe(self):
        a = Subscription.of(Predicate("x", Op.GT, 0),
                            Predicate("x", Op.LT, 10))
        b = Subscription.of(Predicate("x", Op.GE, 0),
                            Predicate("x", Op.LE, 5))
        hull = hull_subscription([a, b])
        constraint = dict(hull.items)["x"]
        assert not constraint.lo_open  # closed 0 covers open 0
        assert constraint.hi == 10 and constraint.hi_open
        assert hull.covers(a) and hull.covers(b)

    def test_empty_input(self):
        assert hull_subscription([]) is None

    values = st.floats(min_value=-20, max_value=20, allow_nan=False)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(values, values), min_size=1, max_size=6))
    def test_hull_always_covers_property(self, bounds):
        members = []
        for lo, hi in bounds:
            if lo > hi:
                lo, hi = hi, lo
            members.append(sub({"x": (lo, hi)}))
        hull = hull_subscription(members)
        assert hull is not None
        for member in members:
            assert hull.covers(member)


class TestSummarizedForest:

    def test_min_cluster_validation(self):
        with pytest.raises(MatchingError):
            SummarizedForest(min_cluster=1)

    def test_builds_summaries_per_symbol(self):
        forest = SummarizedForest(min_cluster=2)
        for symbol in ("HAL", "IBM"):
            for lo in (0, 100, 200):
                forest.insert(sub({"symbol": symbol,
                                   "close": (lo, lo + 10)}), symbol + str(lo))
        assert forest.rebuild_summaries() == 2
        forest.check_invariants()

    def test_matching_exact(self):
        forest = SummarizedForest(min_cluster=2)
        reference = ContainmentForest()
        specs = [
            {"symbol": "HAL", "close": (0, 10)},
            {"symbol": "HAL", "close": (20, 30)},
            {"symbol": "IBM", "close": (0, 10)},
            {"volume": (0, 1000)},
        ]
        for index, spec in enumerate(specs):
            forest.insert(sub(spec), index)
            reference.insert(sub(spec), index)
        for header in ({"symbol": "HAL", "close": 5, "volume": 5},
                       {"symbol": "HAL", "close": 15, "volume": 5000},
                       {"symbol": "IBM", "close": 25, "volume": 1}):
            event = Event(header)
            assert forest.match(event) == reference.match(event)

    def test_summary_prunes_whole_cluster(self):
        """One failed gate skips all members: fewer visited nodes."""
        from repro.sgx.cpu import scaled_spec
        from repro.sgx.platform import SgxPlatform
        platform = SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024))
        arena = platform.memory.new_arena(enclave=False)
        forest = SummarizedForest(arena=arena, min_cluster=2)
        for lo in range(20):
            forest.insert(sub({"symbol": "HAL",
                               "close": (lo, lo + 1)}), lo)
        forest.rebuild_summaries()
        # Event for a different symbol: gate fails, members skipped.
        _m, visited, _e = forest.match_traced(
            Event({"symbol": "IBM", "close": 5}))
        assert visited == 1  # only the summary gate

    def test_rebuild_after_more_inserts(self):
        forest = SummarizedForest(min_cluster=2)
        forest.insert(sub({"symbol": "HAL", "close": (0, 1)}), 1)
        forest.insert(sub({"symbol": "HAL", "close": (2, 3)}), 2)
        forest.rebuild_summaries()
        forest.insert(sub({"symbol": "HAL", "close": (4, 5)}), 3)
        # lazily rebuilt at next match
        assert forest.match(Event({"symbol": "HAL", "close": 4.5})) \
            == {3}

    values = st.integers(min_value=0, max_value=8)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["HAL", "IBM", "GE"]), values,
                  values),
        min_size=1, max_size=25),
        st.lists(st.tuples(st.sampled_from(["HAL", "IBM", "GE", "XOM"]),
                           values), min_size=1, max_size=6))
    def test_exactness_property(self, sub_specs, event_specs):
        forest = SummarizedForest(min_cluster=2)
        reference = ContainmentForest()
        for index, (symbol, a, b) in enumerate(sub_specs):
            lo, hi = min(a, b), max(a, b)
            subscription = sub({"symbol": symbol, "close": (lo, hi)})
            forest.insert(subscription, index)
            reference.insert(subscription, index)
        forest.check_invariants()
        for symbol, value in event_specs:
            event = Event({"symbol": symbol, "close": value})
            assert forest.match(event) == reference.match(event)


class TestUnregisterExactness:
    """The merge layer's covering gates must stay exact while the base
    forest churns underneath them: a removal can splice roots away, so
    a summary hull built before it describes clusters that no longer
    exist."""

    def _populated(self):
        forest = SummarizedForest(min_cluster=2)
        subscriptions = {}
        for index, lo in enumerate((0, 10, 20, 30)):
            subscription = sub({"symbol": "HAL",
                                "close": (float(lo), float(lo + 5))})
            forest.insert(subscription, index)
            subscriptions[index] = subscription
        assert forest.match(Event({"symbol": "HAL", "close": 11.0})) \
            == {1}
        assert forest.n_summaries == 1
        return forest, subscriptions

    def test_removal_invalidates_the_stale_hull(self):
        forest, subscriptions = self._populated()
        assert forest.remove_subscriber(subscriptions[1], 1)
        # The gate is rebuilt before the next answer: the removed
        # subscriber is gone, its siblings still match.
        assert forest.match(Event({"symbol": "HAL",
                                   "close": 11.0})) == set()
        assert forest.match(Event({"symbol": "HAL",
                                   "close": 21.0})) == {2}
        forest.check_invariants()

    def test_removal_below_min_cluster_drops_the_summary(self):
        forest, subscriptions = self._populated()
        for index in (0, 1, 2):
            assert forest.remove_subscriber(subscriptions[index],
                                            index)
        assert forest.match(Event({"symbol": "HAL",
                                   "close": 31.0})) == {3}
        # One root left: below min_cluster, so no synthetic gate.
        assert forest.n_summaries == 0
        assert forest.n_subscriptions == 1

    def test_unknown_removal_keeps_summaries_valid(self):
        forest, subscriptions = self._populated()
        stranger = sub({"symbol": "XOM", "close": (0.0, 1.0)})
        assert not forest.remove_subscriber(stranger, "nobody")
        assert forest.n_summaries == 1  # nothing changed, no rebuild

    values = st.integers(min_value=0, max_value=8)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["HAL", "IBM", "GE"]), values,
                  values),
        min_size=2, max_size=20),
        st.data())
    def test_exactness_survives_unregister_churn(self, sub_specs,
                                                 data):
        """Insert everything, then remove a random subset with matches
        interleaved; the summarized forest must track the plain forest
        exactly through every intermediate state."""
        forest = SummarizedForest(min_cluster=2)
        reference = ContainmentForest()
        live = []
        for index, (symbol, a, b) in enumerate(sub_specs):
            lo, hi = min(a, b), max(a, b)
            subscription = sub({"symbol": symbol,
                                "close": (float(lo), float(hi))})
            forest.insert(subscription, index)
            reference.insert(subscription, index)
            live.append((subscription, index))
        while live:
            subscription, index = data.draw(st.sampled_from(live))
            assert forest.remove_subscriber(subscription, index)
            assert reference.remove_subscriber(subscription, index)
            live.remove((subscription, index))
            symbol = data.draw(st.sampled_from(["HAL", "IBM", "XOM"]))
            value = float(data.draw(self.values))
            event = Event({"symbol": symbol, "close": value})
            assert forest.match(event) == reference.match(event)
            forest.check_invariants()
        assert forest.n_subscriptions == 0
