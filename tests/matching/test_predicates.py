"""Predicate and constraint algebra tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import MatchingError
from repro.matching.predicates import (Constraint, Op, Predicate,
                                       constraint_from_predicates)


class TestPredicateValidation:

    def test_valid_operators(self):
        Predicate("x", Op.EQ, 1)
        Predicate("x", Op.NE, "a")
        Predicate("x", Op.LT, 1.5)
        Predicate("x", Op.RANGE, (0, 10))
        Predicate("x", Op.EXISTS)

    def test_unknown_operator(self):
        with pytest.raises(MatchingError):
            Predicate("x", "~=", 1)

    def test_bad_attribute_name(self):
        with pytest.raises(MatchingError):
            Predicate("", Op.EQ, 1)
        with pytest.raises(MatchingError):
            Predicate("a|b", Op.EQ, 1)

    def test_ordered_operator_needs_numeric(self):
        with pytest.raises(MatchingError):
            Predicate("x", Op.LT, "string")

    def test_range_validation(self):
        with pytest.raises(MatchingError):
            Predicate("x", Op.RANGE, (10, 0))  # empty
        with pytest.raises(MatchingError):
            Predicate("x", Op.RANGE, 5)  # not a pair
        with pytest.raises(MatchingError):
            Predicate("x", Op.RANGE, ("a", "b"))  # not numeric

    def test_exists_takes_no_value(self):
        with pytest.raises(MatchingError):
            Predicate("x", Op.EXISTS, 1)

    def test_nan_rejected(self):
        with pytest.raises(MatchingError):
            Predicate("x", Op.EQ, float("nan"))

    def test_bool_rejected(self):
        with pytest.raises(MatchingError):
            Predicate("x", Op.EQ, True)

    def test_str_rendering(self):
        assert "price < 50" in str(Predicate("price", Op.LT, 50))
        assert "exists" in str(Predicate("x", Op.EXISTS))
        assert "in [0, 10]" in str(Predicate("x", Op.RANGE, (0, 10)))


class TestConstraintFolding:

    def _fold(self, *predicates):
        return constraint_from_predicates(predicates)

    def test_equality(self):
        c = self._fold(Predicate("x", Op.EQ, 5))
        assert c.admits(5) and not c.admits(4)
        assert c.is_equality()

    def test_range_and_bounds(self):
        c = self._fold(Predicate("x", Op.GE, 1), Predicate("x", Op.LT, 5))
        assert c.admits(1) and c.admits(4.99)
        assert not c.admits(5) and not c.admits(0.5)

    def test_tightening(self):
        c = self._fold(Predicate("x", Op.GT, 0),
                       Predicate("x", Op.GE, 2),
                       Predicate("x", Op.RANGE, (1, 10)),
                       Predicate("x", Op.LE, 7))
        assert c.lo == 2 and not c.lo_open
        assert c.hi == 7 and not c.hi_open

    def test_open_beats_closed_at_same_bound(self):
        c = self._fold(Predicate("x", Op.GE, 3), Predicate("x", Op.GT, 3))
        assert c.lo == 3 and c.lo_open

    def test_contradictory_numeric_equalities_unsatisfiable(self):
        c = self._fold(Predicate("x", Op.EQ, 1), Predicate("x", Op.EQ, 2))
        assert not c.is_satisfiable()

    def test_contradictory_string_equalities_unsatisfiable(self):
        c = self._fold(Predicate("x", Op.EQ, "a"),
                       Predicate("x", Op.EQ, "b"))
        assert not c.is_satisfiable()

    def test_string_equality(self):
        c = self._fold(Predicate("x", Op.EQ, "HAL"))
        assert c.admits("HAL") and not c.admits("IBM")
        assert not c.admits(42)
        assert c.is_equality()

    def test_exclusions(self):
        c = self._fold(Predicate("x", Op.NE, 3))
        assert c.admits(2) and not c.admits(3)
        assert c.admits("string")  # universal interval admits any type

    def test_eq_excluded_unsatisfiable(self):
        c = self._fold(Predicate("x", Op.EQ, 3), Predicate("x", Op.NE, 3))
        assert not c.is_satisfiable()

    def test_exists_is_universal(self):
        c = self._fold(Predicate("x", Op.EXISTS))
        assert c.admits(1) and c.admits("anything") and c.admits(-1e9)

    def test_string_and_numeric_mix_rejected(self):
        with pytest.raises(MatchingError):
            self._fold(Predicate("x", Op.EQ, "a"),
                       Predicate("x", Op.LT, 5))

    def test_string_ordered_rejected_in_fold(self):
        # (cannot be built via Predicate, so exercise the folding check
        # with the NE-then-EQ path)
        c = self._fold(Predicate("x", Op.NE, "a"),
                       Predicate("x", Op.EQ, "b"))
        assert c.is_string
        assert c.admits("b") and not c.admits("a")


class TestCovers:

    def _c(self, *predicates):
        return constraint_from_predicates(predicates)

    def test_paper_example(self):
        """'x > 0' covers 'x = 1'."""
        general = self._c(Predicate("x", Op.GT, 0))
        specific = self._c(Predicate("x", Op.EQ, 1))
        assert general.covers(specific)
        assert not specific.covers(general)

    def test_interval_nesting(self):
        outer = self._c(Predicate("x", Op.RANGE, (0, 10)))
        inner = self._c(Predicate("x", Op.RANGE, (2, 8)))
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_open_closed_boundary(self):
        open_lo = self._c(Predicate("x", Op.GT, 0))
        closed_lo = self._c(Predicate("x", Op.GE, 0))
        assert closed_lo.covers(open_lo)
        assert not open_lo.covers(closed_lo)

    def test_reflexive(self):
        c = self._c(Predicate("x", Op.RANGE, (1, 2)))
        assert c.covers(c)

    def test_string_cover(self):
        pin = self._c(Predicate("x", Op.EQ, "a"))
        assert pin.covers(pin)
        other = self._c(Predicate("x", Op.EQ, "b"))
        assert not pin.covers(other)

    def test_universal_covers_strings(self):
        universal = self._c(Predicate("x", Op.EXISTS))
        pin = self._c(Predicate("x", Op.EQ, "a"))
        assert universal.covers(pin)
        assert not pin.covers(universal)

    def test_exclusion_blocks_cover(self):
        excl = self._c(Predicate("x", Op.NE, 5))
        inner = self._c(Predicate("x", Op.RANGE, (0, 10)))
        # inner admits 5, excl doesn't -> excl cannot cover inner
        assert not excl.covers(inner)
        # but it covers an interval avoiding 5
        clean = self._c(Predicate("x", Op.RANGE, (6, 10)))
        assert excl.covers(clean)

    def test_anything_covers_unsatisfiable(self):
        bottom = self._c(Predicate("x", Op.EQ, 1),
                         Predicate("x", Op.EQ, 2))
        narrow = self._c(Predicate("x", Op.EQ, 7))
        assert narrow.covers(bottom)


# -- property-based: covers is consistent with admits ------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-100, max_value=100)


@st.composite
def numeric_constraints(draw):
    lo = draw(finite_floats)
    hi = draw(finite_floats)
    if lo > hi:
        lo, hi = hi, lo
    predicates = [Predicate("x", Op.RANGE, (lo, hi))]
    if draw(st.booleans()):
        predicates.append(Predicate("x", Op.NE,
                                    draw(st.integers(-100, 100))))
    return constraint_from_predicates(predicates)


class TestCoverProperties:

    @given(numeric_constraints(), numeric_constraints(),
           st.lists(finite_floats, min_size=1, max_size=20))
    def test_covers_implies_admits_subset(self, general, specific,
                                          samples):
        """If A covers B, every sampled value B admits, A admits."""
        if not general.covers(specific):
            return
        for value in samples:
            if specific.admits(value):
                assert general.admits(value)

    @given(numeric_constraints())
    def test_covers_reflexive(self, constraint):
        assert constraint.covers(constraint)

    @given(numeric_constraints(), numeric_constraints(),
           numeric_constraints())
    def test_covers_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(numeric_constraints(), finite_floats)
    def test_unsatisfiable_admits_nothing(self, constraint, value):
        if not constraint.is_satisfiable():
            assert not constraint.admits(value)
