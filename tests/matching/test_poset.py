"""Containment forest: structure invariants and matching correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MatchingError
from repro.matching.containment import maximal_elements
from repro.matching.events import Event
from repro.matching.naive import NaiveMatcher
from repro.matching.poset import ContainmentForest
from repro.matching.predicates import Op, Predicate
from repro.matching.stats import forest_stats
from repro.matching.subscriptions import Subscription


def sub(spec):
    return Subscription.parse(spec)


class TestInsert:

    def test_chain_nests(self):
        forest = ContainmentForest()
        outer = sub({"x": (0, 100)})
        middle = sub({"x": (10, 90)})
        inner = sub({"x": (20, 80)})
        forest.insert(outer, "o")
        forest.insert(middle, "m")
        forest.insert(inner, "i")
        forest.check_invariants()
        assert len(forest.roots) == 1
        assert forest.roots[0].subscription == outer
        stats = forest_stats(forest)
        assert stats.max_depth == 3

    def test_reparenting_on_general_insert(self):
        forest = ContainmentForest()
        inner = sub({"x": (20, 80)})
        forest.insert(inner, "i")
        outer = sub({"x": (0, 100)})
        forest.insert(outer, "o")
        forest.check_invariants()
        assert len(forest.roots) == 1
        assert forest.roots[0].subscription == outer

    def test_identical_subscriptions_share_node(self):
        forest = ContainmentForest()
        forest.insert(sub({"x": (0, 10)}), "alice")
        forest.insert(sub({"x": (0, 10)}), "bob")
        assert forest.n_nodes == 1
        assert forest.n_subscriptions == 2
        matched = forest.match(Event({"x": 5}))
        assert matched == {"alice", "bob"}

    def test_incomparable_subscriptions_are_roots(self):
        forest = ContainmentForest()
        forest.insert(sub({"x": (0, 10)}), 1)
        forest.insert(sub({"y": (0, 10)}), 2)
        assert len(forest.roots) == 2

    def test_unsatisfiable_rejected(self):
        forest = ContainmentForest()
        bottom = Subscription.of(Predicate("x", Op.EQ, 1),
                                 Predicate("x", Op.EQ, 2))
        with pytest.raises(MatchingError):
            forest.insert(bottom, "nobody")

    def test_index_bytes_tracks_nodes(self):
        forest = ContainmentForest()
        forest.insert(sub({"x": (0, 10)}), 1)
        bytes_one = forest.index_bytes
        forest.insert(sub({"y": (0, 10)}), 2)
        assert forest.index_bytes > bytes_one


class TestMatch:

    def test_prunes_failed_subtrees_but_stays_correct(self):
        forest = ContainmentForest()
        forest.insert(sub({"x": (0, 100)}), "broad")
        forest.insert(sub({"x": (0, 100), "y": "a"}), "narrow")
        assert forest.match(Event({"x": 5, "y": "a"})) == \
            {"broad", "narrow"}
        assert forest.match(Event({"x": 5, "y": "b"})) == {"broad"}
        assert forest.match(Event({"x": 500, "y": "a"})) == set()

    def test_match_traced_requires_arena(self):
        forest = ContainmentForest()
        forest.insert(sub({"x": 1}), 1)
        with pytest.raises(MatchingError):
            forest.match_traced(Event({"x": 1}))


class TestRemove:

    def test_remove_leaf(self):
        forest = ContainmentForest()
        outer = sub({"x": (0, 100)})
        inner = sub({"x": (20, 80)})
        forest.insert(outer, "o")
        forest.insert(inner, "i")
        assert forest.remove_subscriber(inner, "i")
        forest.check_invariants()
        assert forest.n_nodes == 1
        assert forest.match(Event({"x": 50})) == {"o"}

    def test_remove_inner_hoists_children(self):
        forest = ContainmentForest()
        outer = sub({"x": (0, 100)})
        middle = sub({"x": (10, 90)})
        inner = sub({"x": (20, 80)})
        for s, who in ((outer, "o"), (middle, "m"), (inner, "i")):
            forest.insert(s, who)
        assert forest.remove_subscriber(middle, "m")
        forest.check_invariants()
        assert forest.match(Event({"x": 50})) == {"o", "i"}

    def test_remove_keeps_other_subscriber(self):
        forest = ContainmentForest()
        s = sub({"x": (0, 10)})
        forest.insert(s, "alice")
        forest.insert(s, "bob")
        assert forest.remove_subscriber(s, "alice")
        assert forest.n_nodes == 1
        assert forest.match(Event({"x": 5})) == {"bob"}

    def test_remove_unknown_returns_false(self):
        forest = ContainmentForest()
        forest.insert(sub({"x": (0, 10)}), "alice")
        assert not forest.remove_subscriber(sub({"x": (0, 10)}), "bob")
        assert not forest.remove_subscriber(sub({"z": 1}), "alice")

    def test_reinsert_after_remove(self):
        forest = ContainmentForest()
        s = sub({"x": (0, 10)})
        forest.insert(s, "alice")
        forest.remove_subscriber(s, "alice")
        forest.insert(s, "alice")
        assert forest.match(Event({"x": 5})) == {"alice"}


# -- randomised equivalence against the naive matcher ----------------------------

values = st.integers(min_value=0, max_value=12)


@st.composite
def spec_subscription(draw):
    predicates = []
    for attr in draw(st.sets(st.sampled_from("abc"), min_size=1,
                             max_size=2)):
        lo = draw(values)
        hi = draw(values)
        if lo > hi:
            lo, hi = hi, lo
        predicates.append(Predicate(attr, Op.RANGE, (lo, hi)))
    return Subscription(predicates)


@st.composite
def spec_event(draw):
    return Event({attr: draw(values) for attr in "abc"})


class TestEquivalenceWithNaive:

    @settings(max_examples=60, deadline=None)
    @given(st.lists(spec_subscription(), min_size=1, max_size=25),
           st.lists(spec_event(), min_size=1, max_size=8))
    def test_same_results_as_linear_scan(self, subscriptions, events):
        forest = ContainmentForest()
        naive = NaiveMatcher()
        for index, subscription in enumerate(subscriptions):
            forest.insert(subscription, index)
            naive.insert(subscription, index)
        forest.check_invariants()
        for event in events:
            assert forest.match(event) == naive.match(event)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(spec_subscription(), min_size=2, max_size=20),
           st.data())
    def test_removal_keeps_equivalence(self, subscriptions, data):
        forest = ContainmentForest()
        naive_subs = {}
        for index, subscription in enumerate(subscriptions):
            forest.insert(subscription, index)
            naive_subs[index] = subscription
        # Remove a random half.
        to_remove = data.draw(st.sets(
            st.sampled_from(range(len(subscriptions))),
            max_size=len(subscriptions) // 2))
        for index in to_remove:
            assert forest.remove_subscriber(naive_subs[index], index)
            del naive_subs[index]
        forest.check_invariants()
        naive = NaiveMatcher()
        for index, subscription in naive_subs.items():
            naive.insert(subscription, index)
        event = data.draw(spec_event())
        assert forest.match(event) == naive.match(event)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(spec_subscription(), min_size=1, max_size=20))
    def test_root_count_matches_maximal_elements(self, subscriptions):
        """Roots are exactly the maximal distinct subscriptions."""
        forest = ContainmentForest()
        for index, subscription in enumerate(subscriptions):
            forest.insert(subscription, index)
        distinct = list({s.key(): s for s in subscriptions}.values())
        expected = {s.key() for s in maximal_elements(distinct)}
        got = {node.subscription.key() for node in forest.roots}
        assert got == expected
