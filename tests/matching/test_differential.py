"""Differential matcher equivalence: seven implementations, one truth.

Every matcher in the tree — the containment forest, the linear-scan
baseline, the hybrid enclave/external split, the full engine with and
without its match memo, the columnar batch plane compiled from the
forest, and the columnar-backed engine (with memo, exercising the
memo/plane interplay) — must compute the *same* match set for the same
registrations; they differ only in cost model and placement. This
file pins that property with seeded randomized scripts of
register / unregister / match operations: one shared op sequence is
applied to all implementations and the resulting subscriber sets are
compared after every query.

``derandomize=True`` makes the hypothesis runs reproducible in CI
(the example stream is derived from the test's own source, not the
wall clock), and ``max_examples`` keeps the randomized case count at
or above the coverage floor the roadmap asks for (>= 200 across the
two scripted properties).
"""

from hypothesis import given, settings, strategies as st

from repro.matching.columnar import ColumnarMatchPlane
from repro.matching.events import Event
from repro.matching.hybrid import HybridContainmentForest
from repro.matching.matcher import MatchingEngine
from repro.matching.naive import NaiveMatcher
from repro.matching.poset import ContainmentForest
from repro.matching.predicates import Op, Predicate
from repro.matching.subscriptions import Subscription
from repro.sgx.cpu import scaled_spec
from repro.sgx.memory import MemorySubsystem
from repro.sgx.platform import SgxPlatform

values = st.integers(min_value=0, max_value=9)
symbols = st.sampled_from(["HAL", "IBM", "GE"])


@st.composite
def diff_subscription(draw):
    """Mixed-shape subscriptions: ranges, ordered bounds, string
    equality — the small value domain forces heavy containment overlap,
    which is where the forest, hybrid and memo paths diverge if wrong."""
    predicates = []
    if draw(st.booleans()):
        predicates.append(Predicate("sym", Op.EQ, draw(symbols)))
    for attr in sorted(draw(st.sets(st.sampled_from("ab"),
                                    max_size=2))):
        lo = draw(values)
        hi = draw(values)
        if lo > hi:
            lo, hi = hi, lo
        predicates.append(Predicate(attr, Op.RANGE, (lo, hi)))
    if not predicates:
        predicates.append(Predicate("a", Op.GE, draw(values)))
    return Subscription(predicates)


@st.composite
def diff_event(draw):
    attributes = {"a": draw(values), "b": draw(values)}
    if draw(st.booleans()):
        attributes["sym"] = draw(symbols)
    return Event(attributes)


def trusted_arena(name):
    memory = MemorySubsystem(scaled_spec(llc_bytes=256 * 1024))
    return memory.new_arena(enclave=True, name=name)


def make_hybrid(split_depth=1):
    spec = scaled_spec(llc_bytes=256 * 1024, epc_bytes=68 * 4096,
                       epc_reserved_bytes=4 * 4096)
    platform = SgxPlatform(spec=spec)
    return HybridContainmentForest(
        platform.memory.new_arena(enclave=True),
        platform.memory.new_arena(enclave=False),
        spec.costs, split_depth=split_depth)


class Fleet:
    """All matcher implementations driven through one shared script."""

    def __init__(self):
        self.forest = ContainmentForest(arena=trusted_arena("diff"))
        self.naive = NaiveMatcher()
        self.hybrid = make_hybrid(split_depth=1)
        self.engine = MatchingEngine(
            SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024)),
            enclave=True, memo_capacity=0)
        self.memoized = MatchingEngine(
            SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024)),
            enclave=True, memo_capacity=8)
        # Columnar plane compiled straight off the shared forest: the
        # generation stamp must keep it fresh through every register/
        # unregister the script performs between queries.
        self.plane = ColumnarMatchPlane(self.forest)
        # Columnar-backed engine with a memo: exercises the memo ->
        # plane interplay (hits bypass the columns, misses batch).
        self.columnar = MatchingEngine(
            SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024)),
            enclave=True, memo_capacity=8, backend="columnar")
        self.live = []  # (subscription, subscriber) currently stored

    def register(self, subscription, subscriber):
        self.forest.insert(subscription, subscriber)
        self.naive.insert(subscription, subscriber)
        self.hybrid.insert(subscription, subscriber)
        self.engine.register(subscription, subscriber)
        self.memoized.register(subscription, subscriber)
        self.columnar.register(subscription, subscriber)
        if (subscription.key(), subscriber) not in [
                (s.key(), w) for s, w in self.live]:
            self.live.append((subscription, subscriber))

    def unregister(self, subscription, subscriber):
        removed = [
            self.forest.remove_subscriber(subscription, subscriber),
            self.naive.remove_subscriber(subscription, subscriber),
            self.hybrid.remove_subscriber(subscription, subscriber),
            self.engine.unregister(subscription, subscriber),
            self.memoized.unregister(subscription, subscriber),
            self.columnar.unregister(subscription, subscriber),
        ]
        assert removed == [True] * 6
        self.live.remove((subscription, subscriber))

    def assert_agreement(self, event):
        expected = self.naive.match(event)
        assert self.forest.match(event) == expected
        assert self.hybrid.match(event) == expected
        assert self.engine.match(event).subscribers == expected
        # Twice through the memoized engine: the second query answers
        # the same header from the memo and must not drift.
        assert self.memoized.match(event).subscribers == expected
        assert set(self.memoized.match(event).subscribers) == expected
        assert self.plane.match(event) == expected
        # Twice through the columnar engine as well: first answer may
        # come from the column passes, the second from its memo.
        assert set(self.columnar.match(event).subscribers) == expected
        assert set(self.columnar.match(event).subscribers) == expected

    def check_structure(self):
        self.forest.check_invariants()
        self.engine.forest.check_invariants()
        self.memoized.forest.check_invariants()
        self.columnar.forest.check_invariants()
        n = len(self.live)
        assert self.forest.n_subscriptions == n
        assert self.naive.n_subscriptions == n
        assert self.hybrid.n_subscriptions == n
        assert self.columnar.n_subscriptions == n
        # The plane's compiled view must mirror the forest exactly.
        assert self.plane.n_subscription_nodes == self.forest.n_nodes


class TestDifferentialChurn:

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(st.lists(st.tuples(diff_subscription(),
                              st.integers(min_value=0, max_value=4)),
                    min_size=1, max_size=20),
           st.data())
    def test_all_matchers_agree_under_churn(self, pairs, data):
        """Interleaved register/unregister/match, every implementation
        checked against the linear-scan oracle after each query."""
        fleet = Fleet()
        for subscription, subscriber in pairs:
            action = data.draw(st.sampled_from(
                ["register", "register", "unregister", "match"]))
            if action == "register" or not fleet.live:
                fleet.register(subscription, subscriber)
            elif action == "unregister":
                victim_sub, victim = data.draw(
                    st.sampled_from(fleet.live))
                fleet.unregister(victim_sub, victim)
            else:
                fleet.assert_agreement(data.draw(diff_event()))
        fleet.check_structure()
        # Final sweep: a fixed event grid after the whole script.
        for a in (0, 4, 9):
            for sym in (None, "HAL"):
                attributes = {"a": a, "b": 9 - a}
                if sym is not None:
                    attributes["sym"] = sym
                fleet.assert_agreement(Event(attributes))

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(st.lists(st.tuples(diff_subscription(),
                              st.integers(min_value=0, max_value=4)),
                    min_size=1, max_size=16),
           st.lists(st.lists(diff_event(), min_size=1, max_size=6),
                    min_size=1, max_size=4),
           st.data())
    def test_columnar_batches_between_churn(self, pairs, batches,
                                            data):
        """Whole batches through the columnar engine, churn between
        them: every batch must agree event-for-event with the linear
        oracle, across lazy plane recompiles and memo interplay (the
        second pass over each batch mixes memo hits with column
        passes)."""
        naive = NaiveMatcher()
        engine = MatchingEngine(
            SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024)),
            enclave=True, memo_capacity=4, backend="columnar")
        live = []
        queue = list(pairs)
        for batch in batches:
            burst, queue = queue[:4], queue[4:]
            for subscription, subscriber in burst:
                naive.insert(subscription, subscriber)
                engine.register(subscription, subscriber)
                if (subscription.key(), subscriber) not in [
                        (s.key(), w) for s, w in live]:
                    live.append((subscription, subscriber))
            if live and data.draw(st.booleans()):
                victim_sub, victim = data.draw(st.sampled_from(live))
                assert naive.remove_subscriber(victim_sub, victim)
                assert engine.unregister(victim_sub, victim)
                live.remove((victim_sub, victim))
            for results in (engine.match_batch(batch),
                            engine.match_batch(batch)):
                for event, result in zip(batch, results):
                    assert set(result.subscribers) == naive.match(event)
        engine.forest.check_invariants()

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(st.lists(diff_subscription(), min_size=1, max_size=12),
           st.lists(diff_event(), min_size=1, max_size=6),
           st.data())
    def test_memo_capacity_is_invisible(self, subscriptions, events,
                                        data):
        """A memoized engine under eviction pressure (capacity 2) and a
        memo-free engine answer identically through a register → query →
        unregister-some → re-query cycle; the memo may only change cost,
        never the match set."""
        plain = MatchingEngine(
            SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024)),
            enclave=True, memo_capacity=0)
        tiny = MatchingEngine(
            SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024)),
            enclave=True, memo_capacity=2)
        for index, subscription in enumerate(subscriptions):
            plain.register(subscription, index)
            tiny.register(subscription, index)
        # Repeat the event list so the tiny memo both hits and evicts.
        for event in events + events:
            assert tiny.match(event).subscribers \
                == plain.match(event).subscribers
        victims = data.draw(st.sets(
            st.integers(min_value=0, max_value=len(subscriptions) - 1),
            max_size=len(subscriptions)))
        for index in sorted(victims):
            subscription = subscriptions[index]
            assert plain.unregister(subscription, index) \
                == tiny.unregister(subscription, index)
        for event in events + events:
            assert tiny.match(event).subscribers \
                == plain.match(event).subscribers
        if tiny.memo is not None:
            assert len(tiny.memo) <= 2
