"""Hybrid (enclave/external) containment forest tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MatchingError
from repro.matching.events import Event
from repro.matching.hybrid import HybridContainmentForest
from repro.matching.poset import ContainmentForest
from repro.matching.predicates import Op, Predicate
from repro.matching.subscriptions import Subscription
from repro.sgx.cpu import scaled_spec
from repro.sgx.platform import SgxPlatform


def make_hybrid(split_depth=1, epc_pages=64):
    spec = scaled_spec(llc_bytes=256 * 1024,
                       epc_bytes=(epc_pages + 4) * 4096,
                       epc_reserved_bytes=4 * 4096)
    platform = SgxPlatform(spec=spec)
    forest = HybridContainmentForest(
        platform.memory.new_arena(enclave=True),
        platform.memory.new_arena(enclave=False),
        spec.costs, split_depth=split_depth)
    return platform, forest


def sub(spec_dict):
    return Subscription.parse(spec_dict)


class TestConstruction:

    def test_arena_roles_enforced(self):
        platform, _ = make_hybrid()
        trusted = platform.memory.new_arena(enclave=True)
        untrusted = platform.memory.new_arena(enclave=False)
        with pytest.raises(MatchingError):
            HybridContainmentForest(untrusted, untrusted,
                                    platform.spec.costs)
        with pytest.raises(MatchingError):
            HybridContainmentForest(trusted, trusted,
                                    platform.spec.costs)
        with pytest.raises(MatchingError):
            HybridContainmentForest(trusted, untrusted,
                                    platform.spec.costs,
                                    split_depth=-1)

    def test_unsatisfiable_rejected(self):
        _p, forest = make_hybrid()
        bottom = Subscription.of(Predicate("x", Op.EQ, 1),
                                 Predicate("x", Op.EQ, 2))
        with pytest.raises(MatchingError):
            forest.insert(bottom, "n")


class TestPlacement:

    def test_roots_inside_children_outside(self):
        _p, forest = make_hybrid(split_depth=1)
        forest.insert(sub({"x": (0, 100)}), "root")
        forest.insert(sub({"x": (10, 90)}), "child")
        forest.insert(sub({"x": (20, 80)}), "grandchild")
        internal, external = forest.placement_summary()
        assert internal == 1 and external == 2
        assert forest.protected_bytes < \
            forest.enclave_bytes + forest.external_bytes

    def test_split_depth_zero_everything_outside(self):
        _p, forest = make_hybrid(split_depth=0)
        forest.insert(sub({"x": (0, 100)}), "r")
        internal, external = forest.placement_summary()
        assert internal == 0 and external == 1

    def test_deep_split_everything_inside(self):
        _p, forest = make_hybrid(split_depth=10)
        for i in range(5):
            forest.insert(sub({"x": (i, 100 - i)}), i)
        internal, external = forest.placement_summary()
        assert external == 0 and internal == 5

    def test_identical_subscriptions_share_node(self):
        _p, forest = make_hybrid()
        forest.insert(sub({"x": (0, 10)}), "a")
        forest.insert(sub({"x": (0, 10)}), "b")
        assert forest.n_nodes == 1
        assert forest.match(Event({"x": 5})) == {"a", "b"}


class TestAccounting:

    def test_external_visits_charge_crypto(self):
        platform, forest = make_hybrid(split_depth=0)
        forest.insert(sub({"x": (0, 100)}), "r")
        memory = platform.memory
        before = memory.cycles
        forest.match_traced(Event({"x": 5}))
        external_cost = memory.cycles - before

        platform2, forest2 = make_hybrid(split_depth=10)
        forest2.insert(sub({"x": (0, 100)}), "r")
        platform2.memory.prefault(forest2.enclave_arena.base,
                                  forest2.enclave_arena.allocated_bytes,
                                  enclave=True)
        before = platform2.memory.cycles
        forest2.match_traced(Event({"x": 5}))
        internal_cost = platform2.memory.cycles - before
        # The sealed external node costs the AES work extra.
        assert external_cost > internal_cost

    def test_protected_bytes_bounded_by_split(self):
        _p, forest = make_hybrid(split_depth=1)
        for i in range(50):
            forest.insert(sub({"x": (i, 200 - i)}), i)  # one deep chain
        assert forest.protected_bytes < \
            (forest.enclave_bytes + forest.external_bytes) / 2


# -- equivalence with the reference forest -----------------------------------

values = st.integers(min_value=0, max_value=10)


@st.composite
def rand_sub(draw):
    predicates = []
    for attr in draw(st.sets(st.sampled_from("ab"), min_size=1,
                             max_size=2)):
        lo = draw(values)
        hi = draw(values)
        if lo > hi:
            lo, hi = hi, lo
        predicates.append(Predicate(attr, Op.RANGE, (lo, hi)))
    return Subscription(predicates)


class TestEquivalence:

    @settings(max_examples=40, deadline=None)
    @given(st.lists(rand_sub(), min_size=1, max_size=20),
           st.lists(st.builds(
               lambda a, b: Event({"a": a, "b": b}), values, values),
               min_size=1, max_size=5),
           st.integers(min_value=0, max_value=3))
    def test_same_matches_as_reference(self, subs, events, split):
        _p, hybrid = make_hybrid(split_depth=split)
        reference = ContainmentForest()
        for index, subscription in enumerate(subs):
            hybrid.insert(subscription, index)
            reference.insert(subscription, index)
        for event in events:
            assert hybrid.match(event) == reference.match(event)
            traced, _v, _e = hybrid.match_traced(event)
            assert traced == reference.match(event)


class TestBatchedAccountingEquivalence:
    """The segment-batched accounting in ``match_traced`` must be
    counter-identical to the per-touch reference walk — same LLC
    hits/misses, same EPC faults, same cycles — on any registration
    set, any split depth and any event stream: batching may only
    coalesce touches, never reorder them across the enclave boundary
    or change what is charged."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(rand_sub(), min_size=1, max_size=25),
           st.lists(st.builds(
               lambda a, b: Event({"a": a, "b": b}), values, values),
               min_size=1, max_size=8),
           st.integers(min_value=0, max_value=3))
    def test_snapshot_equality(self, subs, events, split):
        platform_batched, batched = make_hybrid(split_depth=split)
        platform_ref, reference = make_hybrid(split_depth=split)
        for index, subscription in enumerate(subs):
            batched.insert(subscription, index)
            reference.insert(subscription, index)
        assert platform_batched.memory.snapshot() == \
            platform_ref.memory.snapshot()
        for event in events:
            got = batched.match_traced(event)
            want = reference.match_traced_pertouch(event)
            assert got == want
            # Snapshot equality after *every* event: a divergence
            # points at the exact match that broke the interleaving.
            assert platform_batched.memory.snapshot() == \
                platform_ref.memory.snapshot()

    def test_boundary_interleaving_preserved(self):
        """A walk that alternates internal and external nodes must
        flush one segment per boundary crossing, not one batch per
        arena — pinned by exact snapshot equality on a split-depth-1
        chain (root inside, descendants outside)."""
        platform_batched, batched = make_hybrid(split_depth=1)
        platform_ref, reference = make_hybrid(split_depth=1)
        for index in range(8):
            subscription = sub({"x": (index, 100 - index)})
            batched.insert(subscription, index)
            reference.insert(subscription, index)
        internal, external = batched.placement_summary()
        assert internal == 1 and external == 7
        for value in (0, 3, 50, 99):
            event = Event({"x": value})
            assert batched.match_traced(event) == \
                reference.match_traced_pertouch(event)
        assert platform_batched.memory.snapshot() == \
            platform_ref.memory.snapshot()


class TestByKeyFallback:
    """Re-parenting can strand a stored subscription off the
    first-cover descent path; a duplicate insert must then be caught
    by the key map, not stored twice."""

    def _stranded_world(self):
        _p, forest = make_hybrid(split_depth=1)
        P = Subscription.of(Predicate("x", Op.RANGE, (0.0, 10.0)),
                            Predicate("y", Op.RANGE, (0.0, 10.0)))
        Q = Subscription.of(Predicate("y", Op.RANGE, (0.0, 20.0)),
                            Predicate("z", Op.RANGE, (0.0, 100.0)))
        S = Subscription.of(Predicate("x", Op.EQ, 5.0),
                            Predicate("y", Op.EQ, 5.0),
                            Predicate("z", Op.EQ, 5.0))
        G = Subscription.of(Predicate("x", Op.RANGE, (0.0, 100.0)))
        forest.insert(P, "p")
        forest.insert(Q, "q")
        forest.insert(S, "s")     # first-cover descent parks S under P
        forest.insert(G, "g")     # G absorbs P; roots are now [Q, G]
        return forest, (P, Q, S, G)

    def test_duplicate_insert_hits_the_key_map(self):
        forest, (_P, _Q, S, _G) = self._stranded_world()
        nodes_before = forest.n_nodes
        # The descent from the roots now reaches S via Q's (empty)
        # subtree — a dead end; only the key-map fallback can find the
        # node re-parented under P.
        node = forest.insert(S, "s2")
        assert node.subscribers == {"s", "s2"}
        assert forest.n_nodes == nodes_before
        assert forest.n_subscriptions == 5
        event = Event({"x": 5.0, "y": 5.0, "z": 5.0})
        assert forest.match(event) >= {"s", "s2"}

    def test_duplicate_pair_does_not_inflate_the_count(self):
        forest, (_P, _Q, S, _G) = self._stranded_world()
        forest.insert(S, "s")     # identical pair: idempotent
        assert forest.n_subscriptions == 4

    def test_removal_finds_the_stranded_node_and_frees_its_bytes(self):
        forest, (P, Q, S, G) = self._stranded_world()
        assert forest.remove_subscriber(S, "s")
        assert forest.match(Event({"x": 5.0, "y": 5.0,
                                   "z": 5.0})) == {"p", "q", "g"}
        assert not forest.remove_subscriber(S, "s")  # already gone
        for subscription, subscriber in ((P, "p"), (Q, "q"),
                                         (G, "g")):
            assert forest.remove_subscriber(subscription, subscriber)
        assert forest.n_nodes == 0
        assert forest.n_subscriptions == 0
        assert forest.enclave_bytes == 0
        assert forest.external_bytes == 0
