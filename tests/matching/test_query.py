"""Query-language parser tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MatchingError
from repro.matching.events import Event
from repro.matching.predicates import Op
from repro.matching.query import parse_predicate, parse_query
from repro.matching.subscriptions import Subscription


class TestPredicates:

    def test_paper_example(self):
        sub = parse_query('symbol = "HAL" and price < 50')
        assert sub.matches(Event({"symbol": "HAL", "price": 48.0}))
        assert not sub.matches(Event({"symbol": "HAL", "price": 50.0}))
        assert not sub.matches(Event({"symbol": "IBM", "price": 48.0}))

    @pytest.mark.parametrize("text,op", [
        ("x = 5", Op.EQ), ("x == 5", Op.EQ), ("x != 5", Op.NE),
        ("x < 5", Op.LT), ("x <= 5", Op.LE),
        ("x > 5", Op.GT), ("x >= 5", Op.GE),
    ])
    def test_operators(self, text, op):
        predicate = parse_predicate(text)
        assert predicate.op == op
        assert predicate.value == 5

    def test_range(self):
        predicate = parse_predicate("price in [10, 20]")
        assert predicate.op == Op.RANGE
        assert predicate.value == (10, 20)

    def test_exists(self):
        predicate = parse_predicate("exists dividend_yield")
        assert predicate.op == Op.EXISTS
        assert predicate.attribute == "dividend_yield"

    def test_number_types(self):
        assert isinstance(parse_predicate("x = 5").value, int)
        assert isinstance(parse_predicate("x = 5.5").value, float)
        assert parse_predicate("x = -3").value == -3
        assert parse_predicate("x = 1e3").value == 1000.0

    def test_string_quoting(self):
        assert parse_predicate('s = "two words"').value == "two words"
        assert parse_predicate("s = 'single'").value == "single"
        assert parse_predicate("s = HAL").value == "HAL"  # bare word


class TestQueries:

    def test_conjunction_forms(self):
        for glue in ("and", "&&"):
            sub = parse_query(f'a > 1 {glue} b < 2 {glue} c = "x"')
            assert sub.n_constraints == 3

    def test_equivalent_to_parse_dict(self):
        text = parse_query('symbol = "HAL" and price in [10, 20]')
        built = Subscription.parse({"symbol": "HAL",
                                    "price": (10, 20)})
        assert text.key() == built.key()

    def test_whitespace_insensitive(self):
        a = parse_query("x>=1 and y<2")
        b = parse_query("  x >= 1   and   y < 2 ")
        assert a.key() == b.key()

    def test_repeated_attribute_folds(self):
        sub = parse_query("x > 0 and x <= 10")
        constraint = dict(sub.items)["x"]
        assert constraint.lo == 0 and constraint.lo_open
        assert constraint.hi == 10 and not constraint.hi_open

    def test_dotted_names(self):
        sub = parse_query("q0.close < 5")
        assert "q0.close" in dict(sub.items)


class TestErrors:

    @pytest.mark.parametrize("text", [
        "", "   ", "and", "x", "x =", "= 5", "x ~ 5",
        "x in [1 2]", "x in 1, 2]", "x = 5 and", "x = 5 or y = 2",
        'x = "unterminated', "x = 5 y = 2",
    ])
    def test_rejected(self, text):
        with pytest.raises(MatchingError):
            parse_query(text)

    def test_predicate_trailing_input(self):
        with pytest.raises(MatchingError):
            parse_predicate("x = 5 and y = 2")

    def test_empty_range_rejected(self):
        with pytest.raises(MatchingError):
            parse_query("x in [10, 1]")


class TestFuzz:

    names = st.text(alphabet="abcxyz_", min_size=1, max_size=6).filter(
        lambda s: s not in ("and", "in", "exists"))
    numbers = st.integers(min_value=-1000, max_value=1000)

    @given(names, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
           numbers)
    def test_single_predicate_roundtrip(self, name, op, value):
        sub = parse_query(f"{name} {op} {value}")
        assert sub.n_constraints == 1

    @given(st.lists(st.tuples(names, numbers), min_size=1, max_size=4))
    def test_conjunctions_parse(self, parts):
        text = " and ".join(f"{name} >= {value}"
                            for name, value in parts)
        sub = parse_query(text)
        assert 1 <= sub.n_constraints <= len(parts)
