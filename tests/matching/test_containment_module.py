"""Containment-module helper tests (covers/equivalent/maximal)."""

from repro.matching.containment import (covers, equivalent,
                                        maximal_elements,
                                        strictly_covers)
from repro.matching.subscriptions import Subscription


def sub(spec):
    return Subscription.parse(spec)


class TestRelationHelpers:

    def test_covers_nonstrict(self):
        a = sub({"x": (0, 10)})
        b = sub({"x": (0, 10)})
        assert covers(a, b) and covers(b, a)
        assert equivalent(a, b)
        assert not strictly_covers(a, b)

    def test_strict(self):
        outer = sub({"x": (0, 10)})
        inner = sub({"x": (2, 8)})
        assert strictly_covers(outer, inner)
        assert not strictly_covers(inner, outer)
        assert not equivalent(outer, inner)


class TestMaximalElements:

    def test_chain_keeps_top(self):
        chain = [sub({"x": (0, 100)}), sub({"x": (10, 90)}),
                 sub({"x": (20, 80)})]
        maximal = maximal_elements(chain)
        assert [s.key() for s in maximal] == [chain[0].key()]

    def test_antichain_keeps_all(self):
        antichain = [sub({"x": (0, 10)}), sub({"y": (0, 10)}),
                     sub({"z": (0, 10)})]
        assert len(maximal_elements(antichain)) == 3

    def test_duplicates_both_kept(self):
        """Equivalent subscriptions do not strictly cover each other."""
        twins = [sub({"x": (0, 10)}), sub({"x": (0, 10)})]
        assert len(maximal_elements(twins)) == 2

    def test_empty(self):
        assert maximal_elements([]) == []
