"""Event validation, MatchingEngine accounting, forest statistics."""

import pytest

from repro.errors import MatchingError
from repro.matching.events import Event
from repro.matching.matcher import MatchingEngine
from repro.matching.naive import NaiveMatcher
from repro.matching.stats import forest_stats
from repro.matching.subscriptions import Subscription
from repro.sgx.cpu import scaled_spec
from repro.sgx.platform import SgxPlatform


class TestEvent:

    def test_accessors(self):
        event = Event({"symbol": "HAL", "price": 48.2})
        assert event["price"] == 48.2
        assert event.get("nope") is None
        assert "symbol" in event
        assert len(event) == 2
        assert dict(event.items()) == {"symbol": "HAL", "price": 48.2}

    def test_canonical_sorted(self):
        event = Event({"b": 1, "a": 2})
        assert event.canonical() == (("a", 2), ("b", 1))

    def test_empty_header_rejected(self):
        with pytest.raises(MatchingError):
            Event({})

    def test_bad_values_rejected(self):
        with pytest.raises(MatchingError):
            Event({"x": [1, 2]})
        with pytest.raises(MatchingError):
            Event({"x": float("nan")})
        with pytest.raises(MatchingError):
            Event({"": 1})


class TestMatchingEngine:

    def _engine(self, enclave):
        platform = SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024))
        return MatchingEngine(platform, enclave=enclave)

    def test_register_and_match(self):
        engine = self._engine(enclave=True)
        engine.register(Subscription.parse({"x": (0, 10)}), "alice")
        engine.register(Subscription.parse({"x": (2, 8)}), "bob")
        result = engine.match(Event({"x": 5}))
        assert result.subscribers == {"alice", "bob"}
        assert result.nodes_visited == 2
        assert result.simulated_us > 0

    def test_register_returns_positive_time(self):
        engine = self._engine(enclave=True)
        assert engine.register(Subscription.parse({"x": 1}), "a") > 0

    def test_unregister(self):
        engine = self._engine(enclave=False)
        sub = Subscription.parse({"x": (0, 10)})
        engine.register(sub, "alice")
        assert engine.unregister(sub, "alice")
        assert engine.match(Event({"x": 5})).subscribers == set()

    def test_enclave_costs_more_when_missing(self):
        """With a cache-busting index, in-enclave matching is slower."""
        subs = [Subscription.parse({"x": (i, i + 1000)})
                for i in range(3000)]
        event = Event({"x": 999999})  # matches nothing, scans all roots
        times = {}
        for enclave in (False, True):
            engine = self._engine(enclave)
            for index, sub in enumerate(subs):
                engine.register(sub, index)
            # warm, then measure
            engine.match(event)
            times[enclave] = engine.match(event).simulated_us
        assert times[True] > times[False]

    def test_stats_properties(self):
        engine = self._engine(enclave=False)
        engine.register(Subscription.parse({"x": (0, 10)}), "a")
        engine.register(Subscription.parse({"x": (0, 10)}), "b")
        assert engine.n_subscriptions == 2
        assert engine.n_nodes == 1
        assert engine.index_bytes > 0


class TestForestStats:

    def test_empty_forest(self):
        from repro.matching.poset import ContainmentForest
        stats = forest_stats(ContainmentForest())
        assert stats.n_nodes == 0
        assert stats.max_depth == 0
        assert stats.containment_ratio == 0.0

    def test_chain_depth(self):
        from repro.matching.poset import ContainmentForest
        forest = ContainmentForest()
        for i in range(5):
            forest.insert(
                Subscription.parse({"x": (i, 100 - i)}), i)
        stats = forest_stats(forest)
        assert stats.n_roots == 1
        assert stats.max_depth == 5
        assert "roots=1" in stats.describe()

    def test_containment_ratio_dedup(self):
        from repro.matching.poset import ContainmentForest
        forest = ContainmentForest()
        for subscriber in range(4):
            forest.insert(Subscription.parse({"x": (0, 10)}),
                          subscriber)
        stats = forest_stats(forest)
        assert stats.containment_ratio == 0.25


class TestNaiveMatcher:

    def test_dedup(self):
        naive = NaiveMatcher()
        naive.insert(Subscription.parse({"x": 1}), "a")
        naive.insert(Subscription.parse({"x": 1}), "b")
        assert naive.n_entries == 1
        assert naive.match(Event({"x": 1})) == {"a", "b"}

    def test_traced_counts_every_entry(self):
        platform = SgxPlatform(spec=scaled_spec(llc_bytes=256 * 1024))
        arena = platform.memory.new_arena(enclave=False)
        naive = NaiveMatcher(arena=arena)
        for i in range(10):
            naive.insert(Subscription.parse({"x": (i, i + 1)}), i)
        _matched, visited, _evals = naive.match_traced(Event({"x": 0}))
        assert visited == 10
