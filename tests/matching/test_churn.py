"""Subscribe/unsubscribe churn: invariants hold, arena memory returns.

The routing engine lives for the lifetime of the router, so the index
must survive arbitrary interleavings of insert/remove/match without
structural drift, and the modelled EPC working set must not grow
monotonically under churn (the arena-leak regression this file pins).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.matching.events import Event
from repro.matching.naive import NaiveMatcher
from repro.matching.poset import ContainmentForest
from repro.matching.predicates import Op, Predicate
from repro.matching.subscriptions import Subscription
from repro.sgx.cpu import scaled_spec
from repro.sgx.memory import MemorySubsystem

values = st.integers(min_value=0, max_value=9)


@st.composite
def churn_subscription(draw):
    predicates = []
    for attr in draw(st.sets(st.sampled_from("ab"), min_size=1,
                             max_size=2)):
        lo = draw(values)
        hi = draw(values)
        if lo > hi:
            lo, hi = hi, lo
        predicates.append(Predicate(attr, Op.RANGE, (lo, hi)))
    return Subscription(predicates)


def new_arena():
    memory = MemorySubsystem(scaled_spec(llc_bytes=256 * 1024))
    return memory.new_arena(enclave=True, name="churn")


class TestChurnInvariants:

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(churn_subscription(),
                              st.integers(min_value=0, max_value=5)),
                    min_size=1, max_size=30),
           st.data())
    def test_interleaved_ops_keep_invariants_and_equivalence(
            self, pairs, data):
        """Random insert/remove/match interleavings, invariant-checked
        after every mutation, against the linear-scan oracle."""
        forest = ContainmentForest(arena=new_arena())
        live = []  # (subscription, subscriber) currently registered
        for subscription, subscriber in pairs:
            action = data.draw(st.sampled_from(
                ["insert", "insert", "remove", "match"]))
            if action == "insert" or not live:
                forest.insert(subscription, subscriber)
                if (subscription.key(), subscriber) not in [
                        (s.key(), w) for s, w in live]:
                    live.append((subscription, subscriber))
            elif action == "remove":
                victim_sub, victim = data.draw(st.sampled_from(live))
                assert forest.remove_subscriber(victim_sub, victim)
                live.remove((victim_sub, victim))
            else:
                event = Event({attr: data.draw(values)
                               for attr in "ab"})
                naive = NaiveMatcher()
                for stored, who in live:
                    naive.insert(stored, who)
                assert forest.match(event) == naive.match(event)
            forest.check_invariants()
        assert forest.n_subscriptions == len(live)

    def test_double_insert_does_not_inflate_count(self):
        """Regression: re-registering an identical pair used to bump
        n_subscriptions although the subscriber set deduplicated it —
        the drift the extended check_invariants now flags."""
        forest = ContainmentForest()
        s = Subscription.parse({"x": (0, 10)})
        forest.insert(s, "alice")
        forest.insert(s, "alice")
        forest.check_invariants()
        assert forest.n_subscriptions == 1
        assert forest.remove_subscriber(s, "alice")
        forest.check_invariants()
        assert forest.n_subscriptions == 0
        assert forest.n_nodes == 0


class TestArenaChurn:

    def test_full_unsubscribe_returns_arena_to_baseline(self):
        """After every subscriber leaves, live arena bytes return to
        zero and the key map is empty — no leaked allocations."""
        arena = new_arena()
        forest = ContainmentForest(arena=arena)
        rng = random.Random(11)
        registered = []
        for index in range(60):
            spec = {"a": (rng.randrange(5), 5 + rng.randrange(5))}
            if rng.random() < 0.5:
                spec["b"] = rng.randrange(10)
            subscription = Subscription.parse(spec)
            forest.insert(subscription, index)
            registered.append((subscription, index))
        assert arena.live_bytes == forest.index_bytes > 0
        rng.shuffle(registered)
        for subscription, index in registered:
            assert forest.remove_subscriber(subscription, index)
            forest.check_invariants()
        assert forest.n_nodes == 0
        assert forest.n_subscriptions == 0
        assert forest.index_bytes == 0
        assert arena.live_bytes == 0
        assert len(forest._by_key) == 0

    def test_sustained_churn_bounds_high_water(self):
        """Steady-state churn reuses freed blocks: the bump cursor
        stops advancing once the freelist can satisfy allocations."""
        arena = new_arena()
        forest = ContainmentForest(arena=arena)
        rng = random.Random(7)
        def fresh(index):
            return Subscription.parse(
                {"a": (rng.randrange(3), 4 + rng.randrange(3)),
                 "b": rng.randrange(50)}), index

        live = [fresh(i) for i in range(20)]
        for subscription, who in live:
            forest.insert(subscription, who)
        warm = arena.allocated_bytes
        for round_number in range(10):
            for slot in range(len(live)):
                old_sub, old_who = live[slot]
                assert forest.remove_subscriber(old_sub, old_who)
                replacement = fresh(1000 + round_number * 100 + slot)
                live[slot] = replacement
                forest.insert(replacement[0], replacement[1])
            forest.check_invariants()
        # 200 replacements later the cursor has barely moved: churned
        # nodes recycle freed blocks instead of new address space.
        assert arena.reused_blocks > 150
        assert arena.allocated_bytes <= warm * 2
        assert arena.live_bytes == forest.index_bytes
