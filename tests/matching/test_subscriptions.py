"""Subscription normalisation, matching and covering tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MatchingError
from repro.matching.events import Event
from repro.matching.predicates import Op, Predicate
from repro.matching.subscriptions import Subscription


class TestConstruction:

    def test_requires_predicates(self):
        with pytest.raises(MatchingError):
            Subscription([])

    def test_normalisation_merges_attributes(self):
        sub = Subscription.of(Predicate("x", Op.GE, 1),
                              Predicate("x", Op.LE, 5),
                              Predicate("y", Op.EQ, "a"))
        assert sub.n_constraints == 2

    def test_items_sorted_by_attribute(self):
        sub = Subscription.of(Predicate("z", Op.EQ, 1),
                              Predicate("a", Op.EQ, 2))
        assert [attr for attr, _ in sub.items] == ["a", "z"]

    def test_parse_shortcuts(self):
        sub = Subscription.parse({
            "symbol": "HAL",            # equality
            "price": ("<", 50),         # operator pair
            "volume": (1000, 2000),     # closed range
        })
        assert sub.matches(Event({"symbol": "HAL", "price": 48,
                                  "volume": 1500}))
        assert not sub.matches(Event({"symbol": "HAL", "price": 48,
                                      "volume": 2001}))

    def test_equality_counting(self):
        sub = Subscription.parse({"symbol": "HAL", "price": (0, 10)})
        assert sub.n_equality_constraints == 1

    def test_size_model_grows_with_constraints(self):
        small = Subscription.parse({"a": 1})
        big = Subscription.parse({"a": 1, "b": 2, "c": 3})
        assert big.size_bytes() > small.size_bytes()

    def test_unique_ids(self):
        a = Subscription.parse({"x": 1})
        b = Subscription.parse({"x": 1})
        assert a.sub_id != b.sub_id

    def test_equality_by_constraints_not_id(self):
        a = Subscription.parse({"x": 1, "y": ("<", 5)})
        b = Subscription.parse({"y": ("<", 5), "x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()


class TestMatching:

    def test_paper_example(self):
        sub = Subscription.of(Predicate("symbol", Op.EQ, "HAL"),
                              Predicate("price", Op.LT, 50))
        assert sub.matches(Event({"symbol": "HAL", "price": 49.9}))
        assert not sub.matches(Event({"symbol": "HAL", "price": 50.0}))
        assert not sub.matches(Event({"symbol": "IBM", "price": 10.0}))

    def test_missing_attribute_fails(self):
        sub = Subscription.parse({"x": 1, "y": 2})
        assert not sub.matches(Event({"x": 1}))

    def test_extra_attributes_ignored(self):
        sub = Subscription.parse({"x": 1})
        assert sub.matches(Event({"x": 1, "y": 999, "z": "noise"}))

    def test_type_mismatch(self):
        sub = Subscription.parse({"x": "1"})
        assert not sub.matches(Event({"x": 1}))

    def test_matches_counting_short_circuits(self):
        sub = Subscription.parse({"a": 1, "b": 2, "c": 3})
        ok, evaluated = sub.matches_counting(Event({"a": 0, "b": 2,
                                                    "c": 3}))
        assert not ok and evaluated == 1
        ok, evaluated = sub.matches_counting(Event({"a": 1, "b": 2,
                                                    "c": 3}))
        assert ok and evaluated == 3


class TestCovers:

    def test_paper_examples(self):
        general = Subscription.of(Predicate("x", Op.GT, 0))
        assert general.covers(Subscription.of(Predicate("x", Op.EQ, 1)))
        assert general.covers(Subscription.of(
            Predicate("x", Op.GT, 0), Predicate("y", Op.EQ, 1)))

    def test_more_attributes_is_more_specific(self):
        broad = Subscription.parse({"x": (0, 10)})
        narrow = Subscription.parse({"x": (0, 10), "y": "a"})
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_incomparable(self):
        a = Subscription.parse({"x": (0, 10)})
        b = Subscription.parse({"y": (0, 10)})
        assert not a.covers(b) and not b.covers(a)

    def test_partial_order_antisymmetry(self):
        a = Subscription.parse({"x": (0, 10)})
        b = Subscription.parse({"x": (0, 10)})
        assert a.covers(b) and b.covers(a)
        assert a.key() == b.key()


# -- property-based: covering is sound w.r.t. matching -------------------------

values = st.floats(min_value=-50, max_value=50, allow_nan=False)


@st.composite
def random_subscription(draw):
    predicates = []
    for attr in draw(st.sets(st.sampled_from("abcd"), min_size=1,
                             max_size=3)):
        lo = draw(values)
        hi = draw(values)
        if lo > hi:
            lo, hi = hi, lo
        predicates.append(Predicate(attr, Op.RANGE, (lo, hi)))
    return Subscription(predicates)


@st.composite
def random_event(draw):
    header = {attr: draw(values) for attr in "abcd"}
    return Event(header)


class TestCoverSoundness:

    @given(random_subscription(), random_subscription(), random_event())
    def test_cover_implies_match_implication(self, general, specific,
                                             event):
        """s ⊒ s' and e matches s'  =>  e matches s (the definition)."""
        if general.covers(specific) and specific.matches(event):
            assert general.matches(event)

    @given(random_subscription(), random_subscription(),
           random_subscription())
    def test_transitivity(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(random_subscription())
    def test_reflexivity(self, sub):
        assert sub.covers(sub)
