"""Ingress load bench: schedule properties, a micro run, recording."""

import json

import numpy as np
import pytest

from repro.bench.export import record_bench
from repro.bench.ingress import (BENCH_NAME, build_world,
                                 burst_arrivals, main,
                                 poisson_arrivals, ramp_arrivals,
                                 run_ingress_bench)
from repro.ingress import IngressConfig
from repro.bench.ingress import _run_point


class TestSchedules:

    @pytest.mark.parametrize("schedule",
                             [poisson_arrivals, ramp_arrivals,
                              burst_arrivals])
    def test_sorted_within_duration_and_seeded(self, schedule):
        first = schedule(200.0, 1.0, np.random.default_rng(5))
        again = schedule(200.0, 1.0, np.random.default_rng(5))
        other = schedule(200.0, 1.0, np.random.default_rng(6))
        assert np.array_equal(first, again)
        assert not np.array_equal(first, other)
        ordered = np.sort(first)
        assert float(ordered[0]) >= 0.0
        assert float(ordered[-1]) < 1.0

    def test_poisson_count_tracks_offered_rate(self):
        rng = np.random.default_rng(11)
        counts = [len(poisson_arrivals(500.0, 2.0, rng))
                  for _ in range(5)]
        mean = sum(counts) / len(counts)
        assert 800 <= mean <= 1200  # 1000 expected, CLT slack

    def test_ramp_and_burst_shift_mass_as_designed(self):
        rng = np.random.default_rng(7)
        ramp = np.sort(ramp_arrivals(2000.0, 1.0, rng))
        # the ramp ends at 1.75x its start: the back half is denser
        assert (ramp > 0.5).sum() > (ramp <= 0.5).sum()
        burst = np.sort(burst_arrivals(2000.0, 1.0, rng))
        # square wave 0.4x/1.6x: odd segments carry most arrivals
        segment = np.floor(burst * 6).astype(int)
        on = sum((segment == k).sum() for k in (1, 3, 5))
        off = sum((segment == k).sum() for k in (0, 2, 4))
        assert on > 2 * off


class TestMicroRun:

    def test_run_point_accounts_exactly(self):
        world = build_world(n_subscribers=4, pool_size=16, seed=99)
        config = IngressConfig(inbox_capacity=64, batch_size=8)
        rng = np.random.default_rng(3)
        arrivals = np.sort(poisson_arrivals(400.0, 0.25, rng))
        point = _run_point(world, config, "poisson", 1.0, 400.0,
                           arrivals, n_connections=2)
        assert point["offered"] == len(arrivals)
        assert point["conserved"] is True
        assert point["lost"] == 0
        assert point["duplicated"] == 0
        assert point["offered"] == point["accepted"] + point["shed"]
        assert point["p50_ms"] <= point["p99_ms"] <= point["p999_ms"]
        world.router.close()

    def test_reduced_suite_record_shape(self, tmp_path):
        record = run_ingress_bench(reduced=True, seed=5)
        assert record["reduced"] is True
        assert record["capacity_eps"] > 0
        assert len(record["points"]) == 5
        schedules = {(p["schedule"], p["multiplier"])
                     for p in record["points"]}
        assert ("poisson", 1.0) in schedules
        assert ("poisson", 5.0) in schedules
        assert record["all_conserved"] is True
        assert record["zero_lost"] is True

        written = record_bench(BENCH_NAME, record,
                               directory=str(tmp_path))
        loaded = json.loads(
            (tmp_path / f"BENCH_{BENCH_NAME}.json").read_text())
        assert loaded["all_conserved"] is True
        assert "meta" in loaded
        assert written.endswith(f"BENCH_{BENCH_NAME}.json")


class TestMain:

    def test_main_reduced_records_and_passes_gates(self, tmp_path,
                                                   capsys):
        exit_code = main(["--reduced", "--record",
                          "--out", str(tmp_path), "--seed", "17"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "closed-loop capacity" in out
        loaded = json.loads(
            (tmp_path / "BENCH_ingress.json").read_text())
        assert loaded["all_conserved"] is True
        assert loaded["zero_lost"] is True
