"""The overlay benchmark, smoke-tested at a reduced configuration.

The real run (``python -m repro overlay --record``) writes
``BENCH_overlay.json``; this keeps the harness itself honest — every
topology run must come back byte-equivalent to the flat oracle, with
the traffic accounting fields populated and the covering gate
demonstrably pruning something somewhere.
"""

import dataclasses
import json
import pathlib

from repro.bench.export import record_bench
from repro.bench.overlay import run_overlay_bench


class TestOverlayBench:

    def setup_method(self):
        self.result = run_overlay_bench(name="overlay-smoke", seed=11,
                                        n_clients=3, n_publications=4)

    def test_every_topology_matches_the_flat_oracle(self):
        assert [run.shape for run in self.result.runs] == \
            ["line", "tree", "random"]
        assert all(run.equivalent_to_flat for run in self.result.runs)
        assert self.result.all_equivalent

    def test_accounting_fields_are_populated(self):
        for run in self.result.runs:
            assert run.n_brokers >= 4
            assert run.n_links >= run.n_brokers - 1
            assert run.settle_rounds > 0
            assert run.wall_seconds >= 0.0
            assert run.adverts_sent > 0
            # every counter is a non-negative integer, never a float
            for field in ("publications_forwarded",
                          "publications_suppressed", "adverts_sent",
                          "adverts_suppressed", "duplicates_dropped",
                          "deliveries"):
                value = getattr(run, field)
                assert isinstance(value, int) and value >= 0

    def test_covering_gate_pruned_traffic_somewhere(self):
        assert self.result.suppression_observed
        assert sum(run.publications_suppressed
                   for run in self.result.runs) > 0

    def test_result_records_honest_environment(self, tmp_path):
        assert self.result.cpu_cores >= 1
        assert self.result.python_version.count(".") == 2
        path = record_bench("overlay-smoke", self.result,
                            directory=tmp_path)
        payload = json.loads(pathlib.Path(path).read_text())
        assert payload["seed"] == 11
        assert len(payload["runs"]) == 3
        restored = [r["shape"] for r in payload["runs"]]
        assert restored == ["line", "tree", "random"]
        # the dataclass round-trips completely: nothing dropped
        assert set(payload) >= {
            field.name
            for field in dataclasses.fields(self.result)}
