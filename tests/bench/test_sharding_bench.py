"""Sharding bench: geometry helpers, a micro sweep, gates, recording."""

import json
import os

from repro.bench.sharding import (BENCH_NAME, _default_points,
                                  _percentile, main,
                                  run_sharding_bench)


class TestHelpers:

    def test_percentile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert _percentile(values, 0.50) == 3.0
        assert _percentile(values, 0.99) == 5.0
        assert _percentile(values, 0.0) == 1.0
        assert _percentile([], 0.5) == 0.0

    def test_default_points_geometric_to_ceiling(self):
        points = _default_points(1_000_000)
        assert points[-1] == 1_000_000
        assert points == sorted(points)
        assert len(points) == 6
        # tiny ceilings still produce valid (floored) points
        assert all(p >= 64 for p in _default_points(100))


class TestMicroSweep:

    def test_cliff_and_flat_gates_on_reduced_geometry(self):
        record = run_sharding_bench(max_subs=2_000, probes=8,
                                    seed=2016)
        gates = record["gates"]
        # the unsharded arm falls off the scaled cliff...
        assert gates["cliff_shown"], gates
        assert gates["cliff_latency_ratio"] >= 3.0
        # ...the sharded arm does not...
        assert gates["cluster_flat"], gates
        # ...and stays byte-identical to it at every shared point
        assert gates["match_sets_equal"]
        assert gates["equivalence_points"] >= 2
        # live migrations actually happened along the way
        assert record["migrations"]["completed"] >= 1
        assert record["migrations"]["subscriptions_moved"] > 0
        assert record["migrations"]["final_slices"] > 1

    def test_record_structure(self):
        record = run_sharding_bench(max_subs=1_000, probes=6,
                                    seed=7)
        assert record["config"]["max_subs"] == 1_000
        points = record["points"]
        assert [p["subs"] for p in points] == \
            record["config"]["points"]
        for point in points:
            cluster = point["cluster"]
            assert cluster["p99_us"] >= cluster["p50_us"]
            assert cluster["slices"] >= 1
        # unsharded arm is capped: later points carry no flat probe
        capped = [p for p in points
                  if p["subs"] > record["config"]["unsharded_max"]]
        assert all(p["unsharded"] is None for p in capped)
        # the gauge snapshot rode along
        assert record["cluster_metrics"]["cluster.slices"] == \
            record["migrations"]["final_slices"]
        assert "cluster.slice_subscriptions.0" in \
            record["cluster_metrics"]


class TestCli:

    def test_main_records_and_gates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SCBR_SHARDING_SUBS", "1500")
        code = main(["--reduced", "--record", "--require-flat",
                     "--quiet", "--probes", "6",
                     "--out", str(tmp_path)])
        assert code == 0
        written = tmp_path / f"BENCH_{BENCH_NAME}.json"
        assert written.exists()
        payload = json.loads(written.read_text())
        assert "python" in payload["meta"]  # provenance stamp
        assert payload["config"]["max_subs"] == 1500
        assert payload["gates"]["match_sets_equal"]

    def test_env_cap_overrides_subs(self, capsys, monkeypatch):
        monkeypatch.setenv("SCBR_SHARDING_SUBS", "1200")
        code = main(["--subs", "999999", "--quiet", "--probes", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1200" in out
