"""Result-export tests."""

import csv
import io
import json

import pytest

from repro.bench.experiments import FilterMeasurement
from repro.bench.export import (bench_metadata, list_benches,
                                load_bench, measurements_to_csv,
                                measurements_to_json, record_bench,
                                write_measurements)
from repro.errors import ScbrError


def _measurement(size=100, us=12.5):
    return FilterMeasurement(
        workload="e100a1", n_subscriptions=size,
        configuration="out-plain", mean_us=us, wall_us=99.0,
        llc_miss_rate=0.1, epc_faults=0, index_bytes=4096,
        nodes_visited=42.0)


class TestCsv:

    def test_roundtrip_through_csv_reader(self):
        text = measurements_to_csv([_measurement(100), _measurement(200)])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["workload"] == "e100a1"
        assert float(rows[1]["mean_us"]) == 12.5
        assert int(rows[1]["n_subscriptions"]) == 200

    def test_empty(self):
        assert measurements_to_csv([]) == ""

    def test_dict_records(self):
        text = measurements_to_csv([{"a": 1, "b": "x"}])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0] == {"a": "1", "b": "x"}

    def test_bad_record_type(self):
        with pytest.raises(ScbrError):
            measurements_to_csv(["not a record"])


class TestJson:

    def test_roundtrip(self):
        text = measurements_to_json([_measurement()])
        data = json.loads(text)
        assert data[0]["configuration"] == "out-plain"
        assert data[0]["nodes_visited"] == 42.0

    def test_sets_become_sorted_lists(self):
        text = measurements_to_json([{"matched": {"b", "a"}}])
        assert json.loads(text)[0]["matched"] == ["a", "b"]


class TestWrite:

    def test_csv_file(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_measurements([_measurement()], path)
        assert "workload" in open(path).read()

    def test_json_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        write_measurements([_measurement()], path)
        assert json.load(open(path))[0]["workload"] == "e100a1"

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ScbrError):
            write_measurements([_measurement()],
                               str(tmp_path / "out.xml"))


class TestBenchMetadata:

    def test_required_fields(self):
        meta = bench_metadata()
        assert set(meta) >= {"python", "implementation", "cpu_count",
                             "machine", "git_sha"}
        assert isinstance(meta["cpu_count"], int)
        assert meta["cpu_count"] >= 1

    def test_git_sha_unknown_outside_checkout(self, tmp_path):
        meta = bench_metadata(str(tmp_path))
        assert meta["git_sha"] == "unknown"


class TestRecordAndLoad:

    def test_record_stamps_meta(self, tmp_path):
        path = record_bench("probe", {"value": 1},
                            directory=str(tmp_path))
        record = json.load(open(path))
        assert record["value"] == 1
        assert "python" in record["meta"]
        assert "git_sha" in record["meta"]

    def test_record_preserves_producer_meta(self, tmp_path):
        """A record carrying its own meta is not re-stamped."""
        path = record_bench("probe", {"meta": {"python": "0.0"}},
                            directory=str(tmp_path))
        assert json.load(open(path))["meta"] == {"python": "0.0"}

    def test_load_by_name_and_by_path(self, tmp_path):
        path = record_bench("probe", {"value": 2},
                            directory=str(tmp_path))
        by_name, meta = load_bench("probe", directory=str(tmp_path))
        by_path, _ = load_bench(path)
        assert by_name == by_path
        assert by_name["value"] == 2
        assert meta is not None and "python" in meta

    def test_load_tolerates_missing_meta(self, tmp_path):
        """Pre-PR records (no meta block) still load, meta=None."""
        path = str(tmp_path / "BENCH_legacy.json")
        json.dump({"old_field": 3}, open(path, "w"))
        record, meta = load_bench("legacy", directory=str(tmp_path))
        assert record == {"old_field": 3}
        assert meta is None

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ScbrError):
            load_bench("nope", directory=str(tmp_path))

    def test_load_malformed_json(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(ScbrError):
            load_bench("bad", directory=str(tmp_path))

    def test_load_non_object(self, tmp_path):
        (tmp_path / "BENCH_arr.json").write_text("[1, 2]")
        with pytest.raises(ScbrError):
            load_bench("arr", directory=str(tmp_path))


class TestListBenches:

    def test_lists_sorted_with_provenance(self, tmp_path):
        record_bench("zeta", {"v": 1}, directory=str(tmp_path))
        record_bench("alpha", {"v": 2}, directory=str(tmp_path))
        (tmp_path / "BENCH_legacy.json").write_text('{"old": true}')
        entries = list_benches(str(tmp_path))
        assert [e["name"] for e in entries] == ["alpha", "legacy",
                                                "zeta"]
        assert "python" in entries[0] and "git_sha" in entries[0]
        assert "python" not in entries[1]  # legacy record: no meta
        assert entries[1]["top_level_keys"] == ["old"]

    def test_unreadable_record_flagged_not_fatal(self, tmp_path):
        record_bench("good", {"v": 1}, directory=str(tmp_path))
        (tmp_path / "BENCH_broken.json").write_text("{oops")
        entries = {e["name"]: e for e in list_benches(str(tmp_path))}
        assert entries["broken"]["error"] == "unreadable"
        assert "error" not in entries["good"]

    def test_empty_directory(self, tmp_path):
        assert list_benches(str(tmp_path)) == []
