"""Result-export tests."""

import csv
import io
import json

import pytest

from repro.bench.experiments import FilterMeasurement
from repro.bench.export import (measurements_to_csv,
                                measurements_to_json,
                                write_measurements)
from repro.errors import ScbrError


def _measurement(size=100, us=12.5):
    return FilterMeasurement(
        workload="e100a1", n_subscriptions=size,
        configuration="out-plain", mean_us=us, wall_us=99.0,
        llc_miss_rate=0.1, epc_faults=0, index_bytes=4096,
        nodes_visited=42.0)


class TestCsv:

    def test_roundtrip_through_csv_reader(self):
        text = measurements_to_csv([_measurement(100), _measurement(200)])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["workload"] == "e100a1"
        assert float(rows[1]["mean_us"]) == 12.5
        assert int(rows[1]["n_subscriptions"]) == 200

    def test_empty(self):
        assert measurements_to_csv([]) == ""

    def test_dict_records(self):
        text = measurements_to_csv([{"a": 1, "b": "x"}])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0] == {"a": "1", "b": "x"}

    def test_bad_record_type(self):
        with pytest.raises(ScbrError):
            measurements_to_csv(["not a record"])


class TestJson:

    def test_roundtrip(self):
        text = measurements_to_json([_measurement()])
        data = json.loads(text)
        assert data[0]["configuration"] == "out-plain"
        assert data[0]["nodes_visited"] == 42.0

    def test_sets_become_sorted_lists(self):
        text = measurements_to_json([{"matched": {"b", "a"}}])
        assert json.loads(text)[0]["matched"] == ["a", "b"]


class TestWrite:

    def test_csv_file(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_measurements([_measurement()], path)
        assert "workload" in open(path).read()

    def test_json_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        write_measurements([_measurement()], path)
        assert json.load(open(path))[0]["workload"] == "e100a1"

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ScbrError):
            write_measurements([_measurement()],
                               str(tmp_path / "out.xml"))
