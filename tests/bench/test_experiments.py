"""Experiment-runner tests (small sizes; shapes, not absolute values)."""

import pytest

from repro.bench.experiments import (AspeSweep, FilterSweep, bench_spec,
                                     default_subscription_sizes,
                                     measure_aspe, measure_filter,
                                     run_containment_ablation, run_fig8,
                                     run_prefilter_ablation)
from repro.bench.report import format_series_chart, format_table
from repro.workloads.datasets import build_dataset

SIZES = [100, 400]


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("e100a1", 400, 6)


class TestFilterSweep:

    def test_monotone_sizes_enforced(self, dataset):
        sweep = FilterSweep(dataset, enclave=False, encrypted=False)
        sweep.measure_at(200)
        with pytest.raises(ValueError):
            sweep.measure_at(100)

    def test_configuration_labels(self, dataset):
        for enclave, encrypted, label in (
                (False, False, "out-plain"), (False, True, "out-aes"),
                (True, False, "in-plain"), (True, True, "in-aes")):
            m = measure_filter(dataset, 100, enclave, encrypted)
            assert m.configuration == label
            assert m.mean_us > 0
            assert m.n_subscriptions == 100

    def test_encryption_overhead_small_and_positive(self, dataset):
        plain = measure_filter(dataset, 300, False, False)
        encrypted = measure_filter(dataset, 300, False, True)
        overhead = encrypted.mean_us - plain.mean_us
        assert 0 < overhead < 5.0  # paper: below 5 us

    def test_enclave_adds_transition_cost(self, dataset):
        out = measure_filter(dataset, 100, False, False)
        inside = measure_filter(dataset, 100, True, False)
        assert inside.mean_us > out.mean_us

    def test_more_subscriptions_cost_more(self, dataset):
        sweep = FilterSweep(dataset, enclave=False, encrypted=False)
        small = sweep.measure_at(100).mean_us
        large = sweep.measure_at(400).mean_us
        assert large > small


class TestAspeSweep:

    def test_aspe_slower_than_scbr(self, dataset):
        aspe = measure_aspe(dataset, 400)
        scbr = measure_filter(dataset, 400, False, True)
        assert aspe.mean_us > 2 * scbr.mean_us

    def test_aspe_configuration_label(self, dataset):
        assert measure_aspe(dataset, 50).configuration == "out-aspe"
        assert measure_aspe(dataset, 50, prefilter=True).configuration \
            == "out-aspe-bloom"

    def test_aspe_and_scbr_agree_on_matches(self, dataset):
        """Same match decisions through both engines."""
        import numpy as np
        from repro.aspe.matcher import AspeMatcher
        from repro.aspe.scheme import AspeScheme
        from repro.matching.poset import ContainmentForest
        scheme = AspeScheme(dataset.aspe_schema(),
                            np.random.default_rng(5), fill_missing=True)
        matcher = AspeMatcher(scheme.cipher_dimension)
        forest = ContainmentForest()
        for index, sub in enumerate(dataset.subscriptions[:150]):
            matcher.register(scheme.encrypt_subscription(sub), index)
            forest.insert(sub, index)
        for event in dataset.publications:
            encrypted = matcher.match(
                scheme.encrypt_event(event)).subscribers
            assert encrypted == forest.match(event)


class TestFig8:

    def test_paging_cliff(self):
        points = run_fig8(n_subscriptions=14000, bin_count=10)
        assert len(points) >= 5
        spec = bench_spec(epc=True)
        below = [p for p in points
                 if p.db_bytes < spec.epc_usable_bytes * 0.8]
        above = [p for p in points
                 if p.db_bytes > spec.epc_usable_bytes * 1.2]
        assert below and above, "sweep must straddle the EPC limit"
        # Before the limit the ratio is modest; past it, it explodes.
        calm = max(p.time_ratio_in_out for p in below)
        stormy = max(p.time_ratio_in_out for p in above)
        assert stormy > 3 * calm
        assert max(p.fault_ratio_in_out for p in above) > 50


class TestAblations:

    def test_containment_beats_naive(self):
        rows = run_containment_ablation(sizes=[200, 800],
                                        n_publications=6)
        for _size, poset_us, naive_us in rows:
            assert naive_us > poset_us

    def test_prefilter_helps_equality_workload(self):
        rows = run_prefilter_ablation(sizes=[200, 800],
                                      n_publications=4)
        _size, plain, bloom = rows[-1]
        assert bloom < plain


class TestReporting:

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]],
                            title="T")
        assert "T" in text and "2.50" in text and "0.001" in text

    def test_format_chart(self):
        chart = format_series_chart(
            {"s1": {1: 10, 10: 100}, "s2": {1: 20, 10: 50}})
        assert "legend" in chart and "o=s1" in chart

    def test_empty_chart(self):
        assert format_series_chart({}) == "(no data)"

    def test_default_sizes_ascending(self):
        sizes = default_subscription_sizes()
        assert sizes == sorted(sizes)


class TestEnvironmentToggles:

    def test_full_mode_env(self, monkeypatch):
        from repro.bench import experiments
        monkeypatch.setenv("SCBR_BENCH_FULL", "1")
        assert experiments.full_mode()
        assert max(experiments.default_subscription_sizes()) == 100000
        monkeypatch.delenv("SCBR_BENCH_FULL")
        assert not experiments.full_mode()
        assert max(experiments.default_subscription_sizes()) == 10000

    def test_bench_spec_geometry(self):
        from repro.bench.experiments import (BENCH_EPC_BYTES,
                                             BENCH_EPC_RESERVED,
                                             BENCH_LLC_BYTES,
                                             bench_spec)
        spec = bench_spec()
        assert spec.llc_bytes == BENCH_LLC_BYTES
        epc_spec = bench_spec(epc=True)
        assert epc_spec.epc_usable_bytes == \
            BENCH_EPC_BYTES - BENCH_EPC_RESERVED
