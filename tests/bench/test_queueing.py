"""Queueing-simulation tests."""

import pytest

from repro.bench.queueing import (QueueingResult, simulate_queue,
                                  sustainable_rate)
from repro.errors import ScbrError


class TestSimulateQueue:

    def test_light_load_latency_near_service_time(self):
        result = simulate_queue([10.0], arrival_rate_per_s=1000,
                                n_arrivals=5000)
        # Load = 1000/s * 10us = 1%: almost no queueing.
        assert result.offered_load == pytest.approx(0.01)
        assert result.mean_latency_us == pytest.approx(10.0, rel=0.05)
        assert result.stable

    def test_heavy_load_latency_explodes(self):
        light = simulate_queue([10.0], arrival_rate_per_s=10_000,
                               n_arrivals=5000)
        heavy = simulate_queue([10.0], arrival_rate_per_s=99_000,
                               n_arrivals=5000)
        assert heavy.mean_latency_us > 5 * light.mean_latency_us
        assert heavy.utilization > light.utilization

    def test_overload_unstable(self):
        result = simulate_queue([10.0], arrival_rate_per_s=150_000,
                                n_arrivals=3000)
        assert not result.stable
        assert result.offered_load > 1.0
        assert result.utilization == pytest.approx(1.0, abs=0.02)

    def test_percentiles_ordered(self):
        result = simulate_queue([5.0, 10.0, 50.0],
                                arrival_rate_per_s=30_000,
                                n_arrivals=4000)
        assert result.p50_latency_us <= result.p99_latency_us
        assert result.p50_latency_us <= result.mean_latency_us * 3

    def test_deterministic_per_seed(self):
        a = simulate_queue([7.0, 9.0], 20_000, n_arrivals=2000, seed=3)
        b = simulate_queue([7.0, 9.0], 20_000, n_arrivals=2000, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ScbrError):
            simulate_queue([], 100)
        with pytest.raises(ScbrError):
            simulate_queue([1.0], 0)
        with pytest.raises(ScbrError):
            simulate_queue([1.0], 10, n_arrivals=0)


class TestSustainableRate:

    def test_faster_service_sustains_more(self):
        fast = sustainable_rate([10.0], latency_bound_us=200,
                                n_arrivals=3000)
        slow = sustainable_rate([20.0], latency_bound_us=200,
                                n_arrivals=3000)
        assert fast > slow

    def test_rate_below_capacity(self):
        rate = sustainable_rate([10.0], latency_bound_us=100,
                                n_arrivals=3000)
        assert 0 < rate < 1e5  # capacity is 100k/s for 10us service

    def test_impossible_bound(self):
        assert sustainable_rate([50.0], latency_bound_us=10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ScbrError):
            sustainable_rate([1.0], latency_bound_us=0)
