"""Hot-path wall-clock bench: smoke run, phase merging, gates."""

import json

import pytest

from repro.bench.hotpath import (compute_speedups, main, merge_phase,
                                 run_hotpath_bench)


class TestComputeSpeedups:

    def test_ratios(self):
        baseline = {"aes_ctr_mbps": 1.0, "cmac_mbps": 2.0,
                    "envelopes_per_s": 100.0,
                    "matcher_events_per_s": 50.0}
        current = {"aes_ctr_mbps": 4.0, "cmac_mbps": 3.0,
                   "envelopes_per_s": 250.0,
                   "matcher_events_per_s": 50.0}
        speedups = compute_speedups(baseline, current)
        assert speedups["aes_ctr"] == pytest.approx(4.0)
        assert speedups["cmac"] == pytest.approx(1.5)
        assert speedups["envelopes"] == pytest.approx(2.5)
        assert speedups["matcher"] == pytest.approx(1.0)

    def test_missing_or_zero_fields_skipped(self):
        speedups = compute_speedups({"aes_ctr_mbps": 0.0},
                                    {"aes_ctr_mbps": 4.0})
        assert speedups == {}


class TestMergePhase:

    def test_baseline_then_current(self):
        record = merge_phase({}, "baseline", {"aes_ctr_mbps": 1.0},
                             reduced=True)
        assert record["baseline"]["measurements"]["aes_ctr_mbps"] == 1.0
        assert record["baseline"]["reduced"] is True
        assert "speedup" not in record
        record = merge_phase(record, "current", {"aes_ctr_mbps": 3.5},
                             reduced=True)
        # The baseline phase survives the second merge untouched.
        assert record["baseline"]["measurements"]["aes_ctr_mbps"] == 1.0
        assert record["speedup"]["aes_ctr"] == pytest.approx(3.5)

    def test_rerecording_current_updates_speedup(self):
        record = merge_phase({}, "baseline", {"aes_ctr_mbps": 1.0},
                             reduced=True)
        record = merge_phase(record, "current", {"aes_ctr_mbps": 2.0},
                             reduced=True)
        record = merge_phase(record, "current", {"aes_ctr_mbps": 5.0},
                             reduced=True)
        assert record["speedup"]["aes_ctr"] == pytest.approx(5.0)


class TestSmokeRun:

    @pytest.fixture(scope="class")
    def measurements(self):
        return run_hotpath_bench(reduced=True)

    def test_all_metrics_present_and_positive(self, measurements):
        for key in ("aes_ctr_mbps", "reference_aes_ctr_mbps",
                    "cmac_mbps", "envelopes_per_s",
                    "matcher_events_per_s", "aes_vs_reference"):
            assert measurements[key] > 0, key

    def test_optimized_aes_beats_pinned_reference(self, measurements):
        """The in-process gate the CI smoke job enforces."""
        assert measurements["aes_vs_reference"] > 1.5

    def test_workload_sizes_recorded(self, measurements):
        assert measurements["n_envelopes"] > 0
        assert measurements["matcher_events"] > 0

    def test_matcher_backends_reported_side_by_side(self,
                                                    measurements):
        """The default run carries both legs, their ratio, and a
        headline that follows the columnar (batch) path."""
        assert measurements["matcher_events_per_s_forest"] > 0
        assert measurements["matcher_events_per_s_columnar"] > 0
        assert measurements["matcher_columnar_vs_forest"] == \
            pytest.approx(
                measurements["matcher_events_per_s_columnar"]
                / measurements["matcher_events_per_s_forest"],
                rel=0.01)
        assert measurements["matcher_events_per_s"] == \
            measurements["matcher_events_per_s_columnar"]

    def test_single_backend_runs_omit_the_other_leg(self):
        forest_only = run_hotpath_bench(reduced=True,
                                        matcher_backend="forest")
        assert forest_only["matcher_events_per_s"] == \
            forest_only["matcher_events_per_s_forest"]
        assert "matcher_events_per_s_columnar" not in forest_only
        assert "matcher_columnar_vs_forest" not in forest_only
        columnar_only = run_hotpath_bench(reduced=True,
                                          matcher_backend="columnar")
        assert columnar_only["matcher_events_per_s"] == \
            columnar_only["matcher_events_per_s_columnar"]
        assert "matcher_events_per_s_forest" not in columnar_only


class TestMainGates:

    def test_record_flow_and_gate_failure(self, tmp_path, capsys):
        out_dir = str(tmp_path)
        assert main(["--reduced", "--record", "--phase", "baseline",
                     "--out", out_dir]) == 0
        record = json.load(open(tmp_path / "BENCH_hotpath.json"))
        assert "baseline" in record and "meta" in record
        # Re-record as current: speedup block appears, ~1x on same code.
        assert main(["--reduced", "--record", "--phase", "current",
                     "--out", out_dir]) == 0
        record = json.load(open(tmp_path / "BENCH_hotpath.json"))
        assert "speedup" in record
        assert record["speedup"]["aes_ctr"] == pytest.approx(
            1.0, rel=0.6)
        capsys.readouterr()
        # An impossible speedup requirement must fail the run.
        assert main(["--reduced", "--record", "--phase", "current",
                     "--out", out_dir,
                     "--require-aes-speedup", "1e9"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_matcher_speedup_gate(self, tmp_path, capsys):
        """The in-process columnar-vs-forest gate: impossible bars
        fail, and a forest-only run (no ratio) fails too rather than
        silently passing."""
        out_dir = str(tmp_path)
        assert main(["--reduced", "--out", out_dir,
                     "--require-matcher-speedup", "1e9"]) == 1
        assert "columnar matcher" in capsys.readouterr().err
        assert main(["--reduced", "--out", out_dir,
                     "--matcher-backend", "forest",
                     "--require-matcher-speedup", "2.0"]) == 1
        capsys.readouterr()
