"""Regression: requeue restores the *front* of the inbox, exactly once.

The original ``MessageBus.requeue`` appended at the tail, so a message
given back after a crash drained behind traffic that arrived later —
reordering the stream the sender saw as FIFO, and making the router's
crash-resume path replay out of order. These tests pin the contract:
``requeue`` is front restoration, ``inject`` is the tail-append path
for host-local traffic that should queue normally.
"""

import pytest

from repro.core.deadletter import DeadLetterQueue
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.errors import EnclaveLost
from repro.network.bus import MessageBus
from repro.overlay import FlatOracle


@pytest.fixture()
def bus():
    return MessageBus()


@pytest.fixture()
def flat_world():
    oracle = FlatOracle(_generate_keypair_unchecked(768, 65537))
    yield oracle
    oracle.close()


class TestBusRequeue:

    def test_requeue_restores_front(self, bus):
        rx = bus.endpoint("rx")
        tx = bus.endpoint("tx")
        tx.send("rx", [b"m1"])
        tx.send("rx", [b"m2"])
        sender, frames = rx.recv()
        assert frames == [b"m1"]
        tx.send("rx", [b"m3"])  # arrives while m1 is out
        rx.requeue(sender, frames)
        drained = [f for _, (f,) in iter(rx.recv, None)]
        assert drained == [b"m1", b"m2", b"m3"]

    def test_multi_requeue_in_reverse_pop_order(self, bus):
        """Giving back several popped messages means requeueing them
        newest-first, so the oldest ends up at the very front."""
        rx = bus.endpoint("rx")
        tx = bus.endpoint("tx")
        for payload in (b"a", b"b", b"c"):
            tx.send("rx", [payload])
        popped = [rx.recv(), rx.recv()]
        for sender, frames in reversed(popped):
            rx.requeue(sender, frames)
        drained = [f for _, (f,) in iter(rx.recv, None)]
        assert drained == [b"a", b"b", b"c"]

    def test_inject_appends_at_tail(self, bus):
        rx = bus.endpoint("rx")
        tx = bus.endpoint("tx")
        tx.send("rx", [b"first"])
        rx.inject("local", [b"second"])
        drained = [f for _, (f,) in iter(rx.recv, None)]
        assert drained == [b"first", b"second"]

    def test_requeue_is_not_a_network_event(self, bus):
        rx = bus.endpoint("rx")
        tx = bus.endpoint("tx")
        tx.send("rx", [b"m1"])
        before = bus.total_messages
        sender, frames = rx.recv()
        rx.requeue(sender, frames)
        rx.inject("local", [b"m2"])
        assert bus.total_messages == before


class TestRouterCrashResume:

    def test_interrupted_drain_resumes_in_order_exactly_once(
            self, flat_world):
        """A crash mid-message must not reorder or replay traffic.

        The router pops [A, B, C], dies on B; [D] lands afterwards.
        After recovery the processing order must be C then D, each
        exactly once — requeue-at-tail would have drained D first.
        """
        router = flat_world.router
        wire = flat_world.bus.endpoint("wire")
        wire.send(router.name, [b"frame-A", b"frame-B", b"frame-C"])
        wire.send(router.name, [b"frame-D"])

        processed = []
        original = router._process_frame

        def tracing(sender, frame):
            if frame == b"frame-B" and b"frame-B" not in processed:
                processed.append(frame)
                raise EnclaveLost("crash mid-drain")
            processed.append(frame)
            return original(sender, frame)

        router._process_frame = tracing
        with pytest.raises(EnclaveLost):
            router.pump()
        # A was handled; B crashed; C was never touched.
        assert processed == [b"frame-A", b"frame-B"]

        router.pump()
        router.pump()
        assert processed == [b"frame-A", b"frame-B",
                             b"frame-C", b"frame-D"]


class TestDeadLetterRequeue:

    def test_requeue_is_fifo_and_clears_buffer(self):
        dlq = DeadLetterQueue(capacity=8)
        for index in range(4):
            dlq.add(b"f%d" % index, sender="s", reason="poison")
        replayed = []
        count = dlq.requeue(lambda letter: replayed.append(
            letter.frame))
        assert count == 4
        assert replayed == [b"f0", b"f1", b"f2", b"f3"]
        assert len(dlq) == 0
        assert dlq.total == 4  # accounting survives the requeue

    def test_requeue_filters_and_limits_oldest_first(self):
        dlq = DeadLetterQueue(capacity=8)
        dlq.add(b"p0", sender="s", reason="poison")
        dlq.add(b"u0", sender="s", reason="undeliverable")
        dlq.add(b"p1", sender="s", reason="poison")
        dlq.add(b"p2", sender="s", reason="poison")
        replayed = []
        count = dlq.requeue(lambda letter: replayed.append(
            letter.frame), reason="poison", limit=2)
        assert count == 2
        assert replayed == [b"p0", b"p1"]
        assert [letter.frame for letter in dlq] == [b"u0", b"p2"]

    def test_handler_readding_does_not_see_its_own_entry(self):
        dlq = DeadLetterQueue(capacity=8)
        dlq.add(b"flaky", sender="s", reason="poison")

        def failing_handler(letter):
            dlq.add(letter.frame, sender=letter.sender,
                    reason="poison")  # failed again: re-quarantined

        assert dlq.requeue(failing_handler) == 1
        assert [letter.frame for letter in dlq] == [b"flaky"]
        assert dlq.total == 2
