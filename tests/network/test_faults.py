"""Fault injection: plan semantics, determinism, bus integration."""

import pytest

from repro.errors import FaultPlanError
from repro.network.bus import MessageBus
from repro.network.faults import FaultPlan, LinkFaults


def drain(endpoint):
    return [frames[0] for _sender, frames in endpoint.recv_all()]


class TestPlanConfig:

    def test_rates_validated(self):
        with pytest.raises(FaultPlanError):
            LinkFaults(drop=1.5)
        with pytest.raises(FaultPlanError):
            LinkFaults(corrupt=-0.1)

    def test_empty_link_names_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan().on_link("", "b", LinkFaults())

    def test_most_specific_link_wins(self):
        plan = FaultPlan() \
            .on_link("*", "*", LinkFaults(drop=0.1)) \
            .on_link("a", "*", LinkFaults(drop=0.2)) \
            .on_link("a", "b", LinkFaults(drop=0.3))
        assert plan.faults_for("a", "b").drop == 0.3
        assert plan.faults_for("a", "z").drop == 0.2
        assert plan.faults_for("x", "y").drop == 0.1

    def test_unmatched_link_has_no_faults(self):
        plan = FaultPlan().on_link("a", "b", LinkFaults(drop=1.0))
        faults = plan.faults_for("c", "d")
        assert faults.drop == faults.corrupt == 0.0


class TestDeterminism:

    def test_same_seed_same_faults(self):
        def run(seed):
            plan = FaultPlan(seed=seed).on_link(
                "a", "b", LinkFaults(drop=0.5, corrupt=0.5))
            bus = MessageBus(fault_plan=plan)
            a = bus.endpoint("a")
            b = bus.endpoint("b")
            for i in range(30):
                a.send("b", [bytes([i]) * 8])
            return drain(b)

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestBusIntegration:

    def test_drop_is_counted_not_raised(self):
        plan = FaultPlan(seed=1).on_link("a", "b",
                                         LinkFaults(drop=1.0))
        bus = MessageBus(fault_plan=plan)
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        a.send("b", [b"gone"])
        assert b.recv() is None
        assert bus.dropped_messages == 1
        assert plan.injected["drop"] == 1
        snapshot = bus.metrics.snapshot()
        assert snapshot["bus.faults_injected_total{kind=drop}"] == 1
        # The sender saw a successful send (real networks drop
        # silently); only the accounting knows.
        assert a.sent_messages == 1

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan(seed=1).on_link("a", "b",
                                         LinkFaults(duplicate=1.0))
        bus = MessageBus(fault_plan=plan)
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        a.send("b", [b"twice"])
        assert drain(b) == [b"twice", b"twice"]
        assert plan.injected["duplicate"] == 1

    def test_corrupt_flips_one_byte(self):
        plan = FaultPlan(seed=1).on_link("a", "b",
                                         LinkFaults(corrupt=1.0))
        bus = MessageBus(fault_plan=plan)
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        original = bytes(range(32))
        a.send("b", [original])
        (damaged,) = drain(b)
        assert damaged != original
        assert len(damaged) == len(original)
        assert sum(x != y for x, y in zip(damaged, original)) == 1

    def test_reorder_overtakes_previous_message(self):
        plan = FaultPlan(seed=1).on_link("a", "b",
                                         LinkFaults(reorder=1.0))
        bus = MessageBus(fault_plan=plan)
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        a.send("b", [b"first"])
        a.send("b", [b"second"])
        assert drain(b) == [b"second", b"first"]
        assert plan.injected["reorder"] == 1

    def test_unaffected_links_stay_fifo(self):
        plan = FaultPlan(seed=1).on_link("a", "b",
                                         LinkFaults(drop=1.0))
        bus = MessageBus(fault_plan=plan)
        x = bus.endpoint("x")
        bus.endpoint("y")
        for i in range(4):
            x.send("y", [bytes([i])])
        assert drain(bus.endpoint("y")) == [bytes([i])
                                            for i in range(4)]
        assert bus.dropped_messages == 0

    def test_install_fault_plan_later(self):
        bus = MessageBus()
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        a.send("b", [b"clean"])
        bus.install_fault_plan(FaultPlan(seed=2).on_link(
            "a", "b", LinkFaults(drop=1.0)))
        a.send("b", [b"dirty"])
        assert drain(b) == [b"clean"]
        assert bus.dropped_messages == 1
