"""Message bus tests: delivery, ordering, counters, errors."""

import pytest

from repro.errors import NetworkError
from repro.network.bus import MessageBus


class TestDelivery:

    def test_send_recv(self):
        bus = MessageBus()
        alice = bus.endpoint("alice")
        bob = bus.endpoint("bob")
        alice.send("bob", [b"hello", b"world"])
        sender, frames = bob.recv()
        assert sender == "alice"
        assert frames == [b"hello", b"world"]

    def test_fifo_order(self):
        bus = MessageBus()
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        for i in range(5):
            a.send("b", [bytes([i])])
        received = [frames[0][0] for _s, frames in b.recv_all()]
        assert received == [0, 1, 2, 3, 4]

    def test_recv_empty_returns_none(self):
        bus = MessageBus()
        endpoint = bus.endpoint("solo")
        assert endpoint.recv() is None
        assert endpoint.recv_all() == []

    def test_self_send(self):
        bus = MessageBus()
        loop = bus.endpoint("loop")
        loop.send("loop", [b"me"])
        assert loop.recv() == ("loop", [b"me"])

    def test_endpoint_identity_reused(self):
        bus = MessageBus()
        assert bus.endpoint("same") is bus.endpoint("same")

    def test_frames_are_copied(self):
        bus = MessageBus()
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        frame = bytearray(b"mutable")
        a.send("b", [frame])
        frame[0] = 0
        _sender, frames = b.recv()
        assert frames == [b"mutable"]


class TestErrors:

    def test_unknown_destination(self):
        bus = MessageBus()
        a = bus.endpoint("a")
        with pytest.raises(NetworkError):
            a.send("ghost", [b"x"])

    def test_bad_frames(self):
        bus = MessageBus()
        a = bus.endpoint("a")
        bus.endpoint("b")
        with pytest.raises(NetworkError):
            a.send("b", "not a list")
        with pytest.raises(NetworkError):
            a.send("b", ["not bytes"])

    def test_empty_name(self):
        with pytest.raises(NetworkError):
            MessageBus().endpoint("")

    def test_unknown_mailbox_queries(self):
        bus = MessageBus()
        with pytest.raises(NetworkError):
            bus.pop("ghost")
        with pytest.raises(NetworkError):
            bus.pending("ghost")
        with pytest.raises(NetworkError):
            bus.stats("ghost")


class TestCounters:

    def test_traffic_accounting(self):
        bus = MessageBus()
        a = bus.endpoint("a")
        bus.endpoint("b")
        a.send("b", [b"12345"])
        a.send("b", [b"1", b"2"])
        assert a.sent_messages == 2
        assert a.sent_bytes == 7
        assert bus.total_messages == 2
        assert bus.total_bytes == 7
        assert bus.stats("b") == (2, 7)
        assert bus.pending("b") == 2


class TestSeveredBus:
    """Connection-oriented link-down: refusal, not silent loss."""

    def test_down_bus_refuses_sends_loudly(self):
        bus = MessageBus(name="b1~b2")
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        bus.set_down(True)
        with pytest.raises(NetworkError) as excinfo:
            a.send("b", [b"refused"])
        assert "b1~b2" in str(excinfo.value)
        assert bus.refused_messages == 1
        assert b.recv() is None

    def test_in_flight_frames_survive_the_cut(self):
        """Severing refuses *new* sends; frames already accepted by
        the mailbox stay deliverable — a partition is not amnesia."""
        bus = MessageBus()
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        a.send("b", [b"already queued"])
        bus.set_down(True)
        sender, frames = b.recv()
        assert (sender, frames) == ("a", [b"already queued"])

    def test_heal_restores_delivery_and_counts(self):
        bus = MessageBus()
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        bus.set_down(True)
        for _ in range(3):
            with pytest.raises(NetworkError):
                a.send("b", [b"x"])
        bus.set_down(False)
        a.send("b", [b"through"])
        assert b.recv()[1] == [b"through"]
        assert bus.refused_messages == 3
        refused = bus.metrics.counter("bus.sends_refused_total")
        assert refused.value == 3
