"""Metrics registry: counters, gauges, histograms, snapshots."""

import pytest

from repro.errors import MetricsError
from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry)


class TestCounter:

    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labels_split_and_total(self):
        counter = Counter("frames")
        counter.inc(kind="PUB")
        counter.inc(kind="PUB")
        counter.inc(kind="REG")
        assert counter.value == 3
        assert counter.labelled(kind="PUB") == 2
        assert counter.labelled(kind="GHOST") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricsError):
            Counter("c").inc(-1)

    def test_collect_flattens_labels(self):
        counter = Counter("frames")
        counter.inc(kind="PUB")
        samples = {}
        counter.collect(samples)
        assert samples == {"frames": 1, "frames{kind=PUB}": 1}


class TestGauge:

    def test_set_and_read(self):
        gauge = Gauge("g")
        gauge.set(7)
        assert gauge.value == 7

    def test_callback_gauge(self):
        state = {"depth": 3}
        gauge = Gauge("g", fn=lambda: state["depth"])
        assert gauge.value == 3
        state["depth"] = 9
        assert gauge.value == 9

    def test_callback_gauge_rejects_set(self):
        gauge = Gauge("g", fn=lambda: 1)
        with pytest.raises(MetricsError):
            gauge.set(2)


class TestHistogram:

    def test_summary_stats(self):
        hist = Histogram("h", bounds=(1, 10, 100))
        for value in (1, 5, 50, 500):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 556
        assert hist.mean == 139.0
        assert hist.bucket_counts == [1, 1, 1, 1]

    def test_empty_histogram_collects_zeroes(self):
        samples = {}
        Histogram("h").collect(samples)
        assert samples["h.count"] == 0
        assert samples["h.mean"] == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("h", bounds=())
        with pytest.raises(MetricsError):
            Histogram("h", bounds=(5, 1))
        with pytest.raises(MetricsError):
            Histogram("h", bounds=(1, 1, 2))


class TestRegistry:

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(MetricsError):
            registry.gauge("a")

    def test_unknown_metric(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().get("nope")

    def test_snapshot_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.gauge("a.depth").set(1)
        registry.histogram("m.fanout").observe(3)
        snapshot = registry.snapshot()
        assert snapshot["z.count"] == 2
        assert snapshot["a.depth"] == 1
        assert snapshot["m.fanout.count"] == 1
        assert all(isinstance(v, (int, float))
                   for v in snapshot.values())

    def test_shared_registry_composes_components(self):
        """Two components asking for the same name share the metric."""
        registry = MetricsRegistry()
        a = registry.counter("shared.total")
        b = registry.counter("shared.total")
        a.inc()
        b.inc()
        assert registry.snapshot()["shared.total"] == 2
