"""Dataset persistence tests: save/load fidelity and corruption."""

import json

import pytest

from repro.errors import WorkloadError
from repro.workloads.datasets import build_dataset
from repro.workloads.io import (load_dataset, save_dataset,
                                subscription_from_record,
                                subscription_to_record)
from repro.matching.subscriptions import Subscription
from repro.matching.predicates import Op, Predicate


class TestSubscriptionRecords:

    @pytest.mark.parametrize("spec", [
        {"symbol": "HAL"},
        {"price": (10.0, 20.0)},
        {"symbol": "HAL", "price": ("<", 50.0), "volume": (">", 100.0)},
    ])
    def test_roundtrip(self, spec):
        subscription = Subscription.parse(spec)
        rebuilt = subscription_from_record(
            subscription_to_record(subscription))
        assert rebuilt.key() == subscription.key()

    def test_exclusions_and_exists(self):
        subscription = Subscription.of(
            Predicate("a", Op.NE, 5),
            Predicate("b", Op.EXISTS),
            Predicate("c", Op.NE, "bad"))
        rebuilt = subscription_from_record(
            subscription_to_record(subscription))
        assert rebuilt.key() == subscription.key()

    def test_open_bounds(self):
        subscription = Subscription.of(Predicate("x", Op.GT, 1.0),
                                       Predicate("x", Op.LT, 2.0))
        rebuilt = subscription_from_record(
            subscription_to_record(subscription))
        assert rebuilt.key() == subscription.key()


class TestDatasetFiles:

    def test_roundtrip(self, tmp_path):
        dataset = build_dataset("e80a1", 150, 8, n_quotes=500)
        path = str(tmp_path / "e80a1.jsonl")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.name == dataset.name
        assert loaded.attribute_names == dataset.attribute_names
        assert [s.key() for s in loaded.subscriptions] == \
            [s.key() for s in dataset.subscriptions]
        assert [e.header for e in loaded.publications] == \
            [e.header for e in dataset.publications]
        assert len(loaded.collection) == len(dataset.collection)

    def test_loaded_dataset_matches_identically(self, tmp_path):
        from repro.matching.poset import ContainmentForest
        dataset = build_dataset("e100a1", 200, 10, n_quotes=500)
        path = str(tmp_path / "ds.jsonl")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        original = ContainmentForest()
        restored = ContainmentForest()
        for index, (a, b) in enumerate(zip(dataset.subscriptions,
                                           loaded.subscriptions)):
            original.insert(a, index)
            restored.insert(b, index)
        for event_a, event_b in zip(dataset.publications,
                                    loaded.publications):
            assert original.match(event_a) == restored.match(event_b)

    def test_not_a_dataset(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text(json.dumps({"kind": "quote"}) + "\n")
        with pytest.raises(WorkloadError):
            load_dataset(str(path))

    def test_bad_version(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"kind": "header", "version": 99})
                        + "\n")
        with pytest.raises(WorkloadError):
            load_dataset(str(path))

    def test_truncation_detected(self, tmp_path):
        dataset = build_dataset("e80a1", 50, 4, n_quotes=200)
        path = tmp_path / "trunc.jsonl"
        save_dataset(dataset, str(path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(WorkloadError):
            load_dataset(str(path))

    def test_unknown_record_kind(self, tmp_path):
        dataset = build_dataset("e80a1", 10, 2, n_quotes=100)
        path = tmp_path / "weird.jsonl"
        save_dataset(dataset, str(path))
        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "surprise"}) + "\n")
        with pytest.raises(WorkloadError):
            load_dataset(str(path))
