"""Workload generation tests: Table 1 recipes, quotes, Zipf sampling."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.matching.poset import ContainmentForest
from repro.matching.stats import forest_stats
from repro.workloads.datasets import (build_dataset, dataset_statistics)
from repro.workloads.quotes import (BASE_ATTRIBUTES, OPTIONAL_ATTRIBUTES,
                                    generate_quotes)
from repro.workloads.spec import (Distribution, WORKLOADS, WorkloadSpec,
                                  get_workload, workload_names)
from repro.workloads.subscriptions_gen import (SubscriptionGenerator,
                                               merged_events)
from repro.workloads.symbols import KNOWN_SYMBOLS, symbol_universe
from repro.workloads.zipf import ZipfSampler


class TestSymbols:

    def test_known_prefix(self):
        assert symbol_universe(5) == list(KNOWN_SYMBOLS[:5])

    def test_generated_unique(self):
        universe = symbol_universe(500)
        assert len(universe) == len(set(universe)) == 500

    def test_deterministic(self):
        assert symbol_universe(200) == symbol_universe(200)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            symbol_universe(0)


class TestZipf:

    def test_rank_zero_most_popular(self):
        sampler = ZipfSampler(100, 1.0, np.random.default_rng(0))
        counts = np.bincount(sampler.sample_indices(5000),
                             minlength=100)
        assert counts[0] == max(counts)
        assert counts[0] > 5 * counts[50]

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0, np.random.default_rng(0))
        counts = np.bincount(sampler.sample_indices(10000), minlength=10)
        assert counts.min() > 0.7 * counts.max()

    def test_sample_population(self):
        sampler = ZipfSampler(3, 1.0, np.random.default_rng(0))
        assert sampler.sample(["a", "b", "c"]) in ("a", "b", "c")
        with pytest.raises(ValueError):
            sampler.sample(["wrong", "size"])

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, exponent=-1)


class TestQuotes:

    def test_collection_shape(self):
        collection = generate_quotes(500, n_symbols=20, seed=1)
        assert len(collection) == 500
        assert len(collection.symbols) == 20

    def test_attribute_count_range(self):
        collection = generate_quotes(500, seed=1)
        for quote in collection.quotes:
            assert 8 <= len(quote.header) <= 11
            for attribute in BASE_ATTRIBUTES:
                assert attribute in quote.header

    def test_ohlc_consistency(self):
        collection = generate_quotes(300, seed=2)
        for quote in collection.quotes:
            header = quote.header
            assert header["low"] <= min(header["open"],
                                        header["close"]) + 0.01
            assert header["high"] >= max(header["open"],
                                         header["close"]) - 0.01
            assert header["volume"] > 0

    def test_deterministic(self):
        a = generate_quotes(100, seed=7)
        b = generate_quotes(100, seed=7)
        assert [q.header for q in a.quotes] == \
            [q.header for q in b.quotes]

    def test_quotes_for_symbol(self):
        collection = generate_quotes(500, n_symbols=10, seed=1)
        for symbol in collection.symbols:
            for quote in collection.quotes_for(symbol):
                assert quote.symbol == symbol

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            generate_quotes(0)


class TestSpecs:

    def test_nine_workloads(self):
        assert len(workload_names()) == 9
        assert workload_names()[0] == "e100a1"

    def test_table1_equality_mixes(self):
        assert WORKLOADS["e100a1"].equality_mix == {1: 1.0}
        assert WORKLOADS["e80a1"].equality_mix == {0: 0.20, 1: 0.80}
        assert WORKLOADS["extsub2"].equality_mix == \
            {0: 0.15, 1: 0.60, 2: 0.15, 3: 0.10}

    def test_table1_multipliers(self):
        assert WORKLOADS["e80a2"].attribute_multiplier == 2
        assert WORKLOADS["e80a4"].attribute_multiplier == 4
        assert WORKLOADS["extsub4"].attribute_multiplier == 4

    def test_table1_distributions(self):
        assert WORKLOADS["e80a1z100"].distribution == \
            Distribution.ZIPF_SYMBOL
        assert WORKLOADS["e100a1zz100"].distribution == \
            Distribution.ZIPF_ALL

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_spec_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", {0: 0.5}, 1, Distribution.UNIFORM)
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", {0: 1.0}, 3, Distribution.UNIFORM)
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", {0: 1.0}, 1, "weird")


class TestGenerateMany:

    def test_lazy_iterator_equals_eager_list(self):
        collection = generate_quotes(200, seed=1)
        spec = get_workload("e80a1")
        eager = SubscriptionGenerator(collection, spec,
                                      seed=5).generate(40)
        lazy = SubscriptionGenerator(collection, spec, seed=5)
        stream = lazy.generate_many(40)
        assert iter(stream) is stream  # a true iterator, not a list
        assert list(stream) == eager

    def test_streaming_draws_continue_the_sequence(self):
        collection = generate_quotes(200, seed=1)
        spec = get_workload("e80a1")
        reference = SubscriptionGenerator(collection, spec,
                                          seed=9).generate(30)
        split = SubscriptionGenerator(collection, spec, seed=9)
        first = list(split.generate_many(10))
        rest = list(split.generate_many(20))
        assert first + rest == reference


class TestMergedEvents:

    def test_multiplier_one_plain(self):
        collection = generate_quotes(100, seed=1)
        events = merged_events(collection, 1, 10,
                               np.random.default_rng(0))
        assert all("symbol" in event for event in events)

    def test_multiplier_two_prefixes(self):
        collection = generate_quotes(100, seed=1)
        events = merged_events(collection, 2, 10,
                               np.random.default_rng(0))
        for event in events:
            assert "q0_symbol" in event and "q1_symbol" in event
            assert 16 <= len(event) <= 22

    def test_bad_multiplier(self):
        collection = generate_quotes(10, seed=1)
        with pytest.raises(WorkloadError):
            merged_events(collection, 3, 5, np.random.default_rng(0))


class TestDatasets:

    @pytest.mark.parametrize("name", workload_names())
    def test_equality_mix_approximates_table1(self, name):
        dataset = build_dataset(name, 1500, 10)
        stats = dataset_statistics(dataset)
        for n_eq, expected in dataset.spec.equality_mix.items():
            observed = stats[f"eq_fraction_{n_eq}"]
            assert abs(observed - expected) < 0.06, \
                (name, n_eq, observed, expected)

    def test_attribute_multiplication(self):
        for name, low, high in (("e80a1", 8, 11), ("e80a2", 16, 22),
                                ("e80a4", 32, 44)):
            dataset = build_dataset(name, 50, 30)
            stats = dataset_statistics(dataset)
            assert low <= stats["min_pub_attributes"]
            assert stats["max_pub_attributes"] <= high

    def test_zipf_all_produces_duplicates(self):
        uniform = dataset_statistics(build_dataset("e80a1", 2000, 5))
        zipf = dataset_statistics(build_dataset("e80a1zz100", 2000, 5))
        assert zipf["distinct_subscriptions"] < \
            uniform["distinct_subscriptions"]

    def test_zipf_all_builds_deeper_trees(self):
        def depth(name):
            dataset = build_dataset(name, 2000, 5)
            forest = ContainmentForest()
            for index, sub in enumerate(dataset.subscriptions):
                forest.insert(sub, index)
            return forest_stats(forest).mean_depth

        assert depth("e80a1zz100") > depth("e80a1")

    def test_multiplied_attrs_build_more_roots(self):
        def roots(name):
            dataset = build_dataset(name, 2000, 5)
            forest = ContainmentForest()
            for index, sub in enumerate(dataset.subscriptions):
                forest.insert(sub, index)
            return forest_stats(forest).n_roots

        assert roots("e80a4") > roots("e80a1")

    def test_subscriptions_match_some_publications(self):
        """Workloads must produce non-trivial match rates."""
        dataset = build_dataset("e80a1", 2000, 40)
        forest = ContainmentForest()
        for index, sub in enumerate(dataset.subscriptions):
            forest.insert(sub, index)
        total = sum(len(forest.match(event))
                    for event in dataset.publications)
        assert total > 0

    def test_prefix_guard(self):
        dataset = build_dataset("e100a1", 100, 5)
        assert len(dataset.subscription_prefix(50)) == 50
        with pytest.raises(WorkloadError):
            dataset.subscription_prefix(101)

    def test_deterministic_across_builds(self):
        a = build_dataset("e100a1", 200, 5, seed=42)
        b = build_dataset("e100a1", 200, 5, seed=42)
        assert [s.key() for s in a.subscriptions] == \
            [s.key() for s in b.subscriptions]

    def test_aspe_schema_covers_attributes(self):
        dataset = build_dataset("e80a2", 50, 10)
        schema = dataset.aspe_schema()
        assert set(schema.attributes) == set(dataset.attribute_names)
