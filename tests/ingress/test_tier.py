"""Ingress tier units: admission, coalescing, metrics, crash put-back."""

import pytest

from repro.errors import EnclaveLost, NetworkError
from repro.ingress import (POLICY_DROP_OLDEST, SHED_QUEUE_FULL,
                           SHED_RATE_LIMIT, IngressConfig, IngressTier)

from tests.ingress.conftest import make_pub


def make_tier(world, **config_kwargs):
    config_kwargs.setdefault("inbox_capacity", 64)
    config_kwargs.setdefault("batch_size", 4)
    return IngressTier(world.router, IngressConfig(**config_kwargs))


def hal_frames(world, count, start=0):
    return [make_pub(world, {"symbol": "HAL", "price": 10.0},
                     b"m%03d" % (start + i)) for i in range(count)]


class TestConfigValidation:

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            IngressConfig(inbox_capacity=0)
        with pytest.raises(ValueError):
            IngressConfig(batch_size=0)
        with pytest.raises(ValueError):
            IngressConfig(service_per_tick=0)
        with pytest.raises(ValueError):
            IngressConfig(shed_policy="yolo")

    def test_rate_and_burst_must_pair(self):
        with pytest.raises(ValueError):
            IngressConfig(rate_per_tick=2.0)
        with pytest.raises(ValueError):
            IngressConfig(burst=4.0)
        with pytest.raises(ValueError):
            IngressConfig(rate_per_tick=-1.0, burst=4.0)


class TestConnections:

    def test_connect_is_idempotent(self, world):
        tier = make_tier(world)
        assert tier.connect("alice") is tier.connect("alice")
        with pytest.raises(NetworkError):
            tier.connect("")

    def test_submit_after_close_raises(self, world):
        tier = make_tier(world)
        connection = tier.connect("alice")
        tier.disconnect("alice")
        with pytest.raises(NetworkError):
            connection.submit(b"frame")

    def test_disconnect_sheds_unadmitted_buffer(self, world):
        tier = make_tier(world)
        connection = tier.connect("alice")
        for frame in hal_frames(world, 3):
            connection.submit(frame)
        assert tier.disconnect("alice") == 3
        assert tier.offered == 3
        assert tier.shed == 3
        assert tier.shed_by_reason == {SHED_QUEUE_FULL: 3}
        assert tier.offered == tier.accepted + tier.shed + tier.backlog


class TestAdmission:

    def test_rate_limit_sheds_with_reason(self, world):
        world.client("alice", subscription={"symbol": "HAL"})
        world.settle()
        tier = make_tier(world, rate_per_tick=1.0, burst=1.0)
        connection = tier.connect("pub")
        for frame in hal_frames(world, 3):
            connection.submit(frame)
        tier.pump()
        assert tier.accepted == 1
        assert tier.shed == 2
        assert tier.shed_by_reason == {SHED_RATE_LIMIT: 2}
        metric = world.registry.counter("ingress.shed_total")
        assert metric.labelled(reason=SHED_RATE_LIMIT) == 2

    def test_queue_full_reject_new(self, world):
        tier = make_tier(world, inbox_capacity=2, service_per_tick=1)
        connection = tier.connect("pub")
        sheds = []
        tier.on_shed = lambda entry, reason: sheds.append(
            (entry.token, reason))
        for token, frame in enumerate(hal_frames(world, 4)):
            connection.submit(frame, token=token)
        tier.pump()
        # admission runs before dispatch: 0 and 1 fill the inbox, so
        # 2 and 3 bounce; dispatch then serves one entry
        assert tier.accepted == 1
        assert sheds == [(2, SHED_QUEUE_FULL), (3, SHED_QUEUE_FULL)]
        assert tier.queue_depth == 1
        assert tier.offered == tier.accepted + tier.shed + tier.backlog

    def test_queue_full_drop_oldest(self, world):
        tier = make_tier(world, inbox_capacity=2, service_per_tick=1,
                         shed_policy=POLICY_DROP_OLDEST)
        connection = tier.connect("pub")
        sheds = []
        tier.on_shed = lambda entry, reason: sheds.append(
            (entry.token, reason))
        for token, frame in enumerate(hal_frames(world, 4)):
            connection.submit(frame, token=token)
        tier.pump()
        # admission first: 2 evicts 0, 3 evicts 1; dispatch serves 2
        assert tier.accepted == 1
        assert sheds == [(0, SHED_QUEUE_FULL), (1, SHED_QUEUE_FULL)]
        completed = []
        tier.on_complete = lambda entry: completed.append(entry.token)
        tier.drain()
        assert completed == [3]


class TestCoalescing:

    def test_pub_runs_batch_to_size(self, world):
        world.client("alice", subscription={"symbol": "HAL"})
        world.settle()
        tier = make_tier(world, batch_size=4)
        connection = tier.connect("pub")
        for frame in hal_frames(world, 10):
            connection.submit(frame)
        tier.pump()
        assert tier.batches == 3  # 4 + 4 + 2
        histogram = world.registry.histogram("ingress.batch_size")
        assert histogram.count == 3
        assert histogram.total == 10
        assert world.router.publications == 10
        world.settle()
        assert len(world.deliveries()["alice"]) == 10

    def test_non_pub_frame_flushes_run_and_quarantines(self, world):
        """Junk between PUBs keeps FIFO order: the run flushes, the
        junk takes the per-frame boundary (quarantined), and the
        trailing PUBs form a fresh batch."""
        world.client("alice", subscription={"symbol": "HAL"})
        world.settle()
        tier = make_tier(world, batch_size=8)
        connection = tier.connect("pub")
        frames = hal_frames(world, 2) + [b"not a frame"] \
            + hal_frames(world, 2, start=2)
        completed = []
        tier.on_complete = lambda entry: completed.append(entry.token)
        for token, frame in enumerate(frames):
            connection.submit(frame, token=token)
        tier.pump()
        assert completed == [0, 1, 2, 3, 4]  # junk completes too
        assert tier.batches == 2
        assert len(world.router.dead_letters) == 1
        assert next(iter(world.router.dead_letters)).sender == "pub"
        assert tier.offered == tier.accepted + tier.shed

    def test_poison_pub_in_batch_quarantines_only_itself(self, world):
        """A corrupted envelope fails the whole batched ecall; the
        fallback isolates it per frame — the healthy neighbours still
        deliver, only the poison frame is dead-lettered."""
        world.client("alice", subscription={"symbol": "HAL"})
        world.settle()
        good = hal_frames(world, 3)
        poison = bytearray(good[1])
        poison[-1] ^= 0xFF  # break the header CMAC
        tier = make_tier(world, batch_size=8)
        connection = tier.connect("pub")
        for frame in (good[0], bytes(poison), good[2]):
            connection.submit(frame)
        tier.pump()
        world.settle()
        assert tier.accepted == 3  # poison is processed (quarantined)
        assert len(world.router.dead_letters) == 1
        assert len(world.deliveries()["alice"]) == 2


class TestCrashPutBack:

    def test_enclave_loss_preserves_undispatched_entries(self, world):
        world.client("alice", subscription={"symbol": "HAL"})
        world.settle()
        tier = make_tier(world, batch_size=4)
        connection = tier.connect("pub")
        completed = []
        tier.on_complete = lambda entry: completed.append(entry.token)
        for token, frame in enumerate(hal_frames(world, 6)):
            connection.submit(frame, token=token)

        original = world.router.handle_publish_batch
        calls = []

        def flaky(frames, senders=None, progress=None):
            if not calls:
                calls.append("boom")
                raise EnclaveLost("injected mid-dispatch")
            return original(frames, senders=senders,
                            progress=progress)

        world.router.handle_publish_batch = flaky
        with pytest.raises(EnclaveLost):
            tier.pump()
        # nothing confirmed: everything is back in the tier, intact
        assert completed == []
        assert tier.accepted == 0
        assert tier.backlog == 6
        assert tier.offered == tier.accepted + tier.shed + tier.backlog

        tier.drain()
        assert completed == [0, 1, 2, 3, 4, 5]  # exactly once, in order
        assert tier.accepted == 6
        world.settle()
        assert len(world.deliveries()["alice"]) == 6

    def test_partial_batch_progress_is_honoured(self, world):
        """Frames the router confirmed before the crash complete and
        are not re-dispatched after recovery."""
        world.client("alice", subscription={"symbol": "HAL"})
        world.settle()
        tier = make_tier(world, batch_size=4)
        connection = tier.connect("pub")
        completed = []
        tier.on_complete = lambda entry: completed.append(entry.token)
        for token, frame in enumerate(hal_frames(world, 4)):
            connection.submit(frame, token=token)

        original = world.router.handle_publish_batch
        calls = []

        def flaky(frames, senders=None, progress=None):
            if not calls:
                calls.append("boom")
                original(frames[:2], senders=senders[:2],
                         progress=progress)
                raise EnclaveLost("died after two frames")
            return original(frames, senders=senders,
                            progress=progress)

        world.router.handle_publish_batch = flaky
        with pytest.raises(EnclaveLost):
            tier.pump()
        assert completed == [0, 1]
        assert tier.accepted == 2
        assert tier.backlog == 2
        tier.drain()
        assert completed == [0, 1, 2, 3]
        world.settle()
        assert len(world.deliveries()["alice"]) == 4


class TestStats:

    def test_stats_and_gauges_snapshot(self, world):
        tier = make_tier(world, service_per_tick=1)
        connection = tier.connect("pub")
        for frame in hal_frames(world, 3):
            connection.submit(frame)
        tier.pump()
        stats = tier.stats()
        assert stats["offered"] == 3
        assert stats["accepted"] == 1
        assert stats["queue_depth"] == 2
        assert stats["connections"] == 1
        snapshot = world.registry.snapshot()
        assert snapshot["ingress.offered_total"] == 3
        assert snapshot["ingress.accepted_total"] == 1
        assert snapshot["ingress.queue_depth"] == 2
        assert snapshot["ingress.connections"] == 1
