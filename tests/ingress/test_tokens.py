"""Token bucket properties: the admission-control arithmetic.

Hypothesis drives arbitrary interleavings of refill and consume against
the invariants the tier's conservation proof leans on: the level is
always within ``[0, burst]``, a consume never overdraws, and refill is
deterministic — the same op sequence always produces the same
admit/deny pattern.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingress import TokenBucket

RATES = st.floats(min_value=0.1, max_value=50.0,
                  allow_nan=False, allow_infinity=False)
BURSTS = st.floats(min_value=1.0, max_value=200.0,
                   allow_nan=False, allow_infinity=False)
OPS = st.lists(st.one_of(
    st.tuples(st.just("refill"), st.integers(0, 10)),
    st.tuples(st.just("consume"), st.floats(0.1, 20.0))),
    max_size=60)


class TestValidation:

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 4)
        with pytest.raises(ValueError):
            TokenBucket(-1.0, 4)

    def test_rejects_sub_token_burst(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.5)

    def test_rejects_negative_refill_ticks(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, 4).refill(-1)

    def test_rejects_non_positive_cost(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, 4).try_consume(0)


class TestProperties:

    @settings(max_examples=200, deadline=None)
    @given(rate=RATES, burst=BURSTS, ops=OPS)
    def test_level_always_within_bounds(self, rate, burst, ops):
        bucket = TokenBucket(rate, burst)
        for op, amount in ops:
            if op == "refill":
                bucket.refill(amount)
            else:
                bucket.try_consume(amount)
            assert 0.0 <= bucket.tokens <= bucket.burst

    @settings(max_examples=200, deadline=None)
    @given(rate=RATES, burst=BURSTS, ops=OPS)
    def test_consume_never_overdraws(self, rate, burst, ops):
        bucket = TokenBucket(rate, burst)
        for op, amount in ops:
            if op == "refill":
                bucket.refill(amount)
                continue
            before = bucket.tokens
            granted = bucket.try_consume(amount)
            if granted:
                # a successful consume had full cover (modulo the
                # float-drift epsilon) and spent exactly the cost
                assert before + 1e-9 >= amount
                assert bucket.tokens == pytest.approx(
                    max(0.0, before - amount))
            else:
                # a denied consume costs nothing
                assert bucket.tokens == before

    @settings(max_examples=100, deadline=None)
    @given(rate=RATES, burst=BURSTS, ticks=st.integers(0, 1000))
    def test_burst_cap_honored(self, rate, burst, ticks):
        bucket = TokenBucket(rate, burst)
        bucket.refill(ticks)
        assert bucket.tokens == bucket.burst  # started full, stays full
        bucket.try_consume(1.0)
        bucket.refill(ticks)
        assert bucket.tokens <= bucket.burst

    @settings(max_examples=100, deadline=None)
    @given(rate=RATES, burst=BURSTS, ops=OPS)
    def test_deterministic_replay(self, rate, burst, ops):
        outcomes = []
        for _ in range(2):
            bucket = TokenBucket(rate, burst)
            run = []
            for op, amount in ops:
                if op == "refill":
                    run.append(bucket.refill(amount))
                else:
                    run.append(bucket.try_consume(amount))
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]


class TestSteadyState:

    def test_rate_binds_after_burst(self):
        """Burst of 4 up front, then exactly 2 admits per tick."""
        bucket = TokenBucket(rate_per_tick=2.0, burst=4.0)
        admitted = sum(bucket.try_consume() for _ in range(10))
        assert admitted == 4
        for _ in range(5):
            bucket.refill()
            admitted = sum(bucket.try_consume() for _ in range(10))
            assert admitted == 2
