"""Conservation soak: exact admission accounting under seeded overload.

Drives the tier well past its configured service rate for
``SCBR_INGRESS_TICKS`` ticks (default keeps CI fast; the nightly job
raises it) and checks the books balance *exactly*:

* every tick: ``offered == accepted + shed + backlog``;
* at quiescence: ``offered == accepted + shed`` — not approximately,
  not eventually, exactly;
* every shed carries a reason, and per-reason counts sum to the total;
* no accepted envelope is lost or duplicated — completion tokens are
  unique, disjoint from shed tokens, and their union is the offer set;
* the metrics registry mirrors the tier's scalar counters.
"""

import os
import random

import pytest

from repro.ingress import (POLICY_DROP_OLDEST, POLICY_REJECT_NEW,
                           IngressConfig, IngressTier)

TICKS = int(os.environ.get("SCBR_INGRESS_TICKS", "160"))
_SEED = 0xC0FFEE


@pytest.mark.parametrize("policy",
                         [POLICY_REJECT_NEW, POLICY_DROP_OLDEST])
def test_overload_conserves_every_envelope(world, policy):
    world.client("sink", subscription={"symbol": "HAL"})
    world.settle()
    tier = IngressTier(world.router, IngressConfig(
        inbox_capacity=24, batch_size=4, shed_policy=policy,
        rate_per_tick=2.0, burst=4.0, service_per_tick=6))

    completed, shed = [], []
    tier.on_complete = lambda entry: completed.append(entry.token)
    tier.on_shed = lambda entry, reason: shed.append(
        (entry.token, reason))

    rng = random.Random(_SEED)
    connections = [tier.connect(f"conn{i}") for i in range(5)]
    pool = [world._publisher.make_publication(
        {"symbol": "HAL", "price": float(price)}, b"p%03d" % price)
        for price in range(32)]

    next_token = 0
    for _ in range(TICKS):
        for connection in connections:
            for _ in range(rng.randrange(0, 4)):  # ~7.5/tick offered
                connection.submit(rng.choice(pool), token=next_token)
                next_token += 1
        tier.pump()
        assert tier.offered == \
            tier.accepted + tier.shed + tier.backlog

    tier.drain()
    world.settle()

    # Exact conservation at quiescence.
    assert tier.offered == next_token
    assert tier.backlog == 0
    assert tier.offered == tier.accepted + tier.shed

    # Every shed has a reason; reasons sum to the shed total.
    assert all(reason for _, reason in shed)
    assert sum(tier.shed_by_reason.values()) == tier.shed
    assert len(shed) == tier.shed

    # No accepted envelope lost or duplicated.
    completed_set = set(completed)
    shed_set = {token for token, _ in shed}
    assert len(completed) == len(completed_set)
    assert len(shed) == len(shed_set)
    assert completed_set.isdisjoint(shed_set)
    assert completed_set | shed_set == set(range(next_token))

    # Overload actually happened (the test would be vacuous otherwise)
    # and the rate limiter was the first line of defence.
    assert tier.shed > 0
    assert tier.shed_by_reason.get("rate-limit", 0) > 0

    # Metrics mirror the scalars exactly.
    snapshot = world.registry.snapshot()
    assert snapshot["ingress.offered_total"] == tier.offered
    assert snapshot["ingress.accepted_total"] == tier.accepted
    assert snapshot["ingress.shed_total"] == tier.shed

    # Every accepted envelope reached the sink exactly once: all pool
    # frames match the sink's subscription, so deliveries == accepted.
    assert len(world.deliveries()["sink"]) == tier.accepted
