"""Ingress tier transparency: same deliveries as the synchronous bus.

The tier's correctness bar mirrors the overlay's: routing an
unthrottled seeded workload *through* the ingress tier (multiplexed
connections, coalesced batches, random pump cadence) must leave every
client with exactly the payload multiset the plain synchronous
``publish -> settle`` path produces. Backends matter because the tier
feeds the batched ``match_publications`` ecall, whose fallback and
result-splitting differ per matcher.
"""

import random

import pytest

from repro.ingress import IngressConfig, IngressTier
from repro.matching import MATCHER_BACKENDS
from repro.overlay import FlatOracle

_SYMBOLS = ("HAL", "IBM", "APL", "MSF")


def as_multisets(deliveries):
    return {client: sorted(payloads)
            for client, payloads in deliveries.items()}


def build_workload(seed, n_clients=6, n_events=40):
    """One seeded script: subscriptions plus a publication stream."""
    rng = random.Random(seed)
    subs = []
    for index in range(n_clients):
        sym = rng.choice(_SYMBOLS)
        cutoff = rng.choice((25.0, 50.0, 75.0))
        op = rng.choice(("<", ">", "<=", ">="))
        subs.append((f"sub{index:02d}", {"symbol": sym,
                                         "price": (op, cutoff)}))
    events = []
    for index in range(n_events):
        header = {"symbol": rng.choice(_SYMBOLS),
                  "price": round(rng.uniform(1.0, 100.0), 2)}
        events.append((header, b"event-%04d" % index))
    return subs, events


def populate(world, subs):
    for client_id, subscription in subs:
        world.client(client_id, subscription=subscription)
    world.settle()


@pytest.mark.parametrize("backend", MATCHER_BACKENDS)
@pytest.mark.parametrize("seed", [11, 23, 47])
def test_ingress_matches_synchronous_path(vendor_key, seed, backend):
    subs, events = build_workload(seed)

    # Reference: plain synchronous publishes against the oracle.
    sync_world = FlatOracle(vendor_key, matcher_backend=backend)
    populate(sync_world, subs)
    for header, payload in events:
        sync_world.publish(header, payload)
    sync_world.settle()
    expected = as_multisets(sync_world.deliveries())
    sync_world.close()

    # Candidate: the same events through the ingress tier, spread
    # across connections with a seeded interleave and pump cadence.
    ingress_world = FlatOracle(vendor_key, matcher_backend=backend)
    populate(ingress_world, subs)
    tier = IngressTier(ingress_world.router,
                       IngressConfig(inbox_capacity=4096, batch_size=8))
    rng = random.Random(seed * 7919)
    connections = [tier.connect(f"pub{i}") for i in range(3)]
    for header, payload in events:
        frame = ingress_world._publisher.make_publication(header,
                                                          payload)
        rng.choice(connections).submit(frame)
        if rng.random() < 0.25:
            tier.pump()
    tier.drain()
    ingress_world.settle()
    actual = as_multisets(ingress_world.deliveries())
    stats = tier.stats()
    ingress_world.close()

    assert actual == expected
    assert stats["offered"] == len(events)
    assert stats["accepted"] == len(events)
    assert stats["shed"] == 0
