"""Shared fixtures for the ingress tier suite.

The tier tests drive a real provisioned router (via the overlay's
:class:`~repro.overlay.FlatOracle`, which is exactly "one router with
clients") rather than a mock: admission control, batching and the
crash put-back path are only meaningful against the genuine
``match_publications`` ecall and delivery machinery.
"""

import pytest

from repro.crypto.rsa import _generate_keypair_unchecked
from repro.overlay import FlatOracle


@pytest.fixture(scope="session")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


@pytest.fixture()
def world(vendor_key):
    """One flat router world; tests add clients and a tier on top."""
    oracle = FlatOracle(vendor_key)
    yield oracle
    oracle.close()


def make_pub(world, header, payload):
    """Pre-encrypt one PUB frame with the world's provider keys."""
    return world._publisher.make_publication(header, payload)
