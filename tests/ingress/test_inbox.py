"""Bounded inbox properties: FIFO order and deterministic shedding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingress import (POLICY_DROP_OLDEST, POLICY_REJECT_NEW,
                           BoundedInbox, InboxEntry)


def entry(index, client="c"):
    return InboxEntry(client, b"frame-%d" % index, token=index)


class TestValidation:

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BoundedInbox(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            BoundedInbox(4, policy="drop-newest")


class TestFifo:

    def test_take_preserves_insertion_order(self):
        inbox = BoundedInbox(8)
        for index in range(5):
            assert inbox.offer(entry(index)) == (True, None)
        assert [e.token for e in inbox.take(3)] == [0, 1, 2]
        assert [e.token for e in inbox.take()] == [3, 4]
        assert inbox.take() == []

    def test_take_zero_or_negative_is_empty(self):
        inbox = BoundedInbox(4)
        inbox.offer(entry(0))
        assert inbox.take(0) == []
        assert inbox.take(-1) == []
        assert inbox.depth == 1

    def test_put_back_restores_front_in_order(self):
        inbox = BoundedInbox(8)
        for index in range(4):
            inbox.offer(entry(index))
        taken = inbox.take(3)
        inbox.offer(entry(99))  # arrives while the batch is out
        inbox.put_back(taken[1:])  # entry 0 completed; 1, 2 resume
        assert [e.token for e in inbox.take()] == [1, 2, 3, 99]

    def test_put_back_may_exceed_capacity(self):
        inbox = BoundedInbox(2)
        inbox.offer(entry(0))
        inbox.offer(entry(1))
        taken = inbox.take()
        inbox.offer(entry(2))
        inbox.offer(entry(3))
        inbox.put_back(taken)
        assert inbox.depth == 4  # restorations are never shed
        assert [e.token for e in inbox.take()] == [0, 1, 2, 3]


class TestShedPolicies:

    def test_reject_new_bounces_the_arrival(self):
        inbox = BoundedInbox(2, policy=POLICY_REJECT_NEW)
        inbox.offer(entry(0))
        inbox.offer(entry(1))
        admitted, shed = inbox.offer(entry(2))
        assert admitted is False and shed.token == 2
        assert [e.token for e in inbox.take()] == [0, 1]

    def test_drop_oldest_evicts_the_head(self):
        inbox = BoundedInbox(2, policy=POLICY_DROP_OLDEST)
        inbox.offer(entry(0))
        inbox.offer(entry(1))
        admitted, shed = inbox.offer(entry(2))
        assert admitted is True and shed.token == 0
        assert [e.token for e in inbox.take()] == [1, 2]


class TestProperties:

    @settings(max_examples=150, deadline=None)
    @given(capacity=st.integers(1, 16),
           policy=st.sampled_from([POLICY_REJECT_NEW,
                                   POLICY_DROP_OLDEST]),
           ops=st.lists(st.one_of(st.just("offer"),
                                  st.integers(1, 4)),
                        max_size=80))
    def test_conservation_and_fifo(self, capacity, policy, ops):
        """Every offered entry ends up taken or shed, exactly once,
        and the taken sequence is a subsequence of the offer order."""
        inbox = BoundedInbox(capacity, policy=policy)
        offered, taken, shed = [], [], []
        next_token = 0
        for op in ops:
            if op == "offer":
                e = entry(next_token)
                offered.append(next_token)
                next_token += 1
                admitted, bounced = inbox.offer(e)
                if bounced is not None:
                    assert (bounced is e) == (not admitted)
                    shed.append(bounced.token)
            else:
                taken.extend(x.token for x in inbox.take(op))
            assert inbox.depth <= capacity
        taken.extend(x.token for x in inbox.take())
        assert sorted(taken + shed) == offered
        assert taken == sorted(taken)  # FIFO: tokens rise
        assert shed == sorted(shed)    # sheds also happen in order

    def test_shed_order_deterministic_under_fixed_seed(self):
        """Same seeded arrival/drain interleaving -> identical shed
        sequence, run to run (the soak's reproducibility bar)."""
        def run(seed):
            rng = random.Random(seed)
            inbox = BoundedInbox(4, policy=POLICY_DROP_OLDEST)
            sheds = []
            for token in range(200):
                _, bounced = inbox.offer(entry(token))
                if bounced is not None:
                    sheds.append(bounced.token)
                if rng.random() < 0.3:
                    inbox.take(rng.randrange(1, 3))
            return sheds

        assert run(7) == run(7)
        assert run(7) != run(8)
