"""CLI tests: every subcommand parses and the cheap ones run."""

import pytest

from repro.cli import build_parser, main


class TestParser:

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("demo", "table1", "fig5", "fig6", "fig7",
                        "fig8", "ablations", "workloads", "recover",
                        "dlq"):
            args = parser.parse_args(
                [command] if command in ("demo", "table1", "workloads",
                                         "fig8", "recover", "dlq")
                else [command, "--sizes", "100"])
            assert callable(args.func)

    def test_recover_empty_sizes_skips_sweep(self):
        args = build_parser().parse_args(["recover", "--sizes"])
        assert args.sizes == []
        args = build_parser().parse_args(["recover"])
        assert args.sizes is None

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["make-coffee"])

    def test_sizes_parsing(self):
        args = build_parser().parse_args(
            ["fig5", "--sizes", "100", "200", "--publications", "5"])
        assert args.sizes == [100, 200]
        assert args.publications == 5


class TestExecution:

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "e100a1" in out and "zipf_all" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "roots" in out and "extsub4" in out

    def test_fig5_tiny(self, capsys):
        assert main(["fig5", "--sizes", "100", "200",
                     "--publications", "4"]) == 0
        out = capsys.readouterr().out
        assert "in-aes" in out and "200" in out

    def test_fig6_tiny(self, capsys):
        assert main(["fig6", "--sizes", "100",
                     "--publications", "4"]) == 0
        out = capsys.readouterr().out
        assert "e80a1zz100" in out

    def test_ablations_tiny(self, capsys):
        assert main(["ablations", "--sizes", "100", "200"]) == 0
        out = capsys.readouterr().out
        assert "poset" in out and "bloom" in out

    def test_recover_tiny(self, capsys):
        assert main(["recover", "--publications", "12",
                     "--mean-interval", "4", "--sizes"]) == 0
        out = capsys.readouterr().out
        assert "enclave deaths" in out
        assert "recovery metrics" in out
        assert "recovery latency" not in out   # sweep skipped

    def test_dlq_tiny(self, capsys):
        assert main(["dlq", "--publications", "3"]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "requeued 3" in out
        assert "dead letters now 0" in out


class TestHotpathCommands:

    def test_parser_registers_new_commands(self):
        parser = build_parser()
        for argv in (["hotpath", "--reduced"],
                     ["profile", "--top", "5"],
                     ["bench", "--list"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_bench_list(self, tmp_path, capsys):
        from repro.bench.export import record_bench
        record_bench("probe", {"v": 1}, directory=str(tmp_path))
        assert main(["bench", "--list", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "probe" in out and "python" in out

    def test_hotpath_gate_failure_propagates(self, tmp_path, capsys):
        assert main(["hotpath", "--reduced", "--record",
                     "--phase", "baseline", "--out", str(tmp_path),
                     "--require-aes-vs-reference", "1e9"]) == 1
        assert (tmp_path / "BENCH_hotpath.json").exists()

    def test_hotpath_matcher_gate_propagates(self, tmp_path, capsys):
        assert main(["hotpath", "--reduced", "--out", str(tmp_path),
                     "--require-matcher-speedup", "1e9"]) == 1
        assert "columnar matcher" in capsys.readouterr().err

    def test_profile_prints_stats_table(self, capsys):
        assert main(["profile", "--top", "5",
                     "--matcher-backend", "columnar"]) == 0
        out = capsys.readouterr().out
        # Summary line plus the pstats table.
        assert "envelopes/s" in out
        assert "(columnar)" in out
        assert "cumtime" in out


class TestIngressCommand:

    def test_ingress_parser_registered(self):
        args = build_parser().parse_args(
            ["ingress", "--reduced", "--record", "--seed", "9",
             "--matcher-backend", "forest"])
        assert callable(args.func)
        assert args.reduced and args.record
        assert args.matcher_backend == "forest"
        assert args.seed == 9

    def test_ingress_reduced_records_and_gates(self, tmp_path, capsys):
        assert main(["ingress", "--reduced", "--record",
                     "--out", str(tmp_path), "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "closed-loop capacity" in out
        assert "conservation exact at every point: True" in out
        assert (tmp_path / "BENCH_ingress.json").exists()


class TestChurnCommand:

    def test_churn_parser_registered(self):
        args = build_parser().parse_args(
            ["churn", "--seed", "7", "--clients", "3",
             "--publications", "4", "--record"])
        assert callable(args.func)
        assert args.seed == 7 and args.record

    def test_churn_tiny_records_and_gates(self, tmp_path, capsys):
        assert main(["churn", "--seed", "7", "--clients", "3",
                     "--publications", "3", "--record",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "membership chaos" in out
        assert "zero lost: True" in out
        assert (tmp_path / "BENCH_churn.json").exists()
