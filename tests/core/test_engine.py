"""Enclave routing-engine tests (the trusted ScbrEnclaveLibrary)."""

import hashlib

import pytest

from repro.core.engine import PROVISION_AAD, ScbrEnclaveLibrary
from repro.core.keys import ProviderKeyChain
from repro.core.messages import (decode_public_key, encode_header,
                                 encode_public_key, encode_subscription,
                                 hybrid_encrypt)
from repro.crypto.encoding import pack_fields
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.errors import (AuthenticationError, EnclaveError,
                          RollbackError, RoutingError)
from repro.matching.events import Event
from repro.matching.subscriptions import Subscription
from repro.sgx.platform import SgxPlatform
from repro.sgx.sdk import load_enclave


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


@pytest.fixture()
def setup(vendor_key):
    platform = SgxPlatform(attestation_key_bits=768)
    enclave = load_enclave(platform, ScbrEnclaveLibrary, vendor_key,
                           rsa_bits=768)
    keys = ProviderKeyChain(rsa_bits=768)
    return platform, enclave, keys


def provision(enclave, keys):
    _report, pubkey_blob = enclave.ecall("attestation_report",
                                         b"\x00" * 32)
    enclave_pk = decode_public_key(pubkey_blob)
    payload = pack_fields([keys.sk,
                           encode_public_key(keys.public_key)])
    blob = hybrid_encrypt(enclave_pk, payload, aad=PROVISION_AAD)
    assert enclave.ecall("provision", blob)


def register(enclave, keys, spec, client):
    sub = Subscription.parse(spec)
    envelope = keys.channel().protect(encode_subscription(sub),
                                      aad=client.encode())
    signature = keys.rsa.sign(envelope)
    return enclave.ecall("register_subscription", envelope, signature)


def publish(enclave, keys, header):
    envelope = keys.channel().protect(encode_header(Event(header)))
    return enclave.ecall("match_publication", envelope)


class TestProvisioning:

    def test_report_binds_key(self, setup):
        _platform, enclave, _keys = setup
        report, pubkey_blob = enclave.ecall("attestation_report",
                                            b"\x00" * 32)
        assert report.report_data == \
            hashlib.sha256(pubkey_blob).digest()

    def test_operations_require_provisioning(self, setup):
        _platform, enclave, keys = setup
        with pytest.raises(EnclaveError):
            publish(enclave, keys, {"x": 1})
        with pytest.raises(EnclaveError):
            register(enclave, keys, {"x": 1}, "alice")

    def test_wrong_aad_rejected(self, setup):
        _platform, enclave, keys = setup
        _r, pubkey_blob = enclave.ecall("attestation_report",
                                        b"\x00" * 32)
        enclave_pk = decode_public_key(pubkey_blob)
        payload = pack_fields([keys.sk,
                               encode_public_key(keys.public_key)])
        blob = hybrid_encrypt(enclave_pk, payload, aad=b"wrong")
        with pytest.raises(RoutingError):
            enclave.ecall("provision", blob)


class TestRegistrationAndMatching:

    def test_full_flow(self, setup):
        _platform, enclave, keys = setup
        provision(enclave, keys)
        assert register(enclave, keys,
                        {"symbol": "HAL", "price": ("<", 50)},
                        "alice") == "alice"
        register(enclave, keys, {"symbol": "IBM"}, "bob")
        assert publish(enclave, keys,
                       {"symbol": "HAL", "price": 48.0}) == ["alice"]
        assert publish(enclave, keys,
                       {"symbol": "IBM", "price": 10.0}) == ["bob"]
        assert publish(enclave, keys,
                       {"symbol": "XOM", "price": 1.0}) == []

    def test_forged_signature_rejected(self, setup):
        _platform, enclave, keys = setup
        provision(enclave, keys)
        rogue = ProviderKeyChain(rsa_bits=768)
        sub = Subscription.parse({"x": 1})
        envelope = keys.channel().protect(encode_subscription(sub),
                                          aad=b"mallory")
        bad_signature = rogue.rsa.sign(envelope)
        with pytest.raises(AuthenticationError):
            enclave.ecall("register_subscription", envelope,
                          bad_signature)

    def test_wrong_sk_rejected(self, setup):
        _platform, enclave, keys = setup
        provision(enclave, keys)
        rogue = ProviderKeyChain(rsa_bits=768)
        sub = Subscription.parse({"x": 1})
        envelope = rogue.channel().protect(encode_subscription(sub),
                                           aad=b"alice")
        signature = keys.rsa.sign(envelope)  # valid signature, wrong SK
        with pytest.raises(AuthenticationError):
            enclave.ecall("register_subscription", envelope, signature)

    def test_empty_client_id_rejected(self, setup):
        _platform, enclave, keys = setup
        provision(enclave, keys)
        sub = Subscription.parse({"x": 1})
        envelope = keys.channel().protect(encode_subscription(sub),
                                          aad=b"")
        signature = keys.rsa.sign(envelope)
        with pytest.raises(RoutingError):
            enclave.ecall("register_subscription", envelope, signature)

    def test_unregister(self, setup):
        _platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        sub = Subscription.parse({"symbol": "HAL"})
        envelope = keys.channel().protect(encode_subscription(sub),
                                          aad=b"alice")
        signature = keys.rsa.sign(envelope)
        assert enclave.ecall("unregister_subscription", envelope,
                             signature)
        assert publish(enclave, keys, {"symbol": "HAL"}) == []

    def test_batched_matching_agrees_with_single(self, setup):
        _platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        register(enclave, keys, {"symbol": "IBM"}, "bob")
        headers = [{"symbol": "HAL"}, {"symbol": "IBM"},
                   {"symbol": "XOM"}]
        envelopes = [keys.channel().protect(
            encode_header(Event(h))) for h in headers]
        batched = enclave.ecall("match_publications", envelopes)
        singles = [enclave.ecall("match_publication", e)
                   for e in envelopes]
        assert batched == singles == [["alice"], ["bob"], []]

    def test_batching_amortises_transitions(self, setup):
        _platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        envelopes = [keys.channel().protect(
            encode_header(Event({"symbol": "HAL", "price": float(i)})))
            for i in range(8)]
        ecalls_before = enclave.ecalls
        enclave.ecall("match_publications", envelopes)
        assert enclave.ecalls == ecalls_before + 1  # one transition

    def test_stats(self, setup):
        _platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        subs, nodes, size = enclave.ecall("engine_stats")
        assert subs == 1 and nodes == 1 and size > 0


class TestSealRestore:

    def test_state_survives_restart(self, setup, vendor_key):
        platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        sealed, counter_id = enclave.ecall("seal_state")
        enclave.destroy()

        fresh = load_enclave(platform, ScbrEnclaveLibrary, vendor_key,
                             rsa_bits=768)
        assert fresh.ecall("restore_state", sealed, counter_id) == 1
        assert publish(fresh, keys, {"symbol": "HAL"}) == ["alice"]

    def test_rollback_detected(self, setup, vendor_key):
        platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        stale, counter_id = enclave.ecall("seal_state")
        register(enclave, keys, {"symbol": "IBM"}, "bob")
        _fresh_blob, counter_id2 = enclave.ecall("seal_state")
        assert counter_id == counter_id2
        fresh = load_enclave(platform, ScbrEnclaveLibrary, vendor_key,
                             rsa_bits=768)
        with pytest.raises(RollbackError):
            fresh.ecall("restore_state", stale, counter_id)

    def test_seal_requires_provisioning(self, setup):
        _platform, enclave, _keys = setup
        with pytest.raises(EnclaveError):
            enclave.ecall("seal_state")


class ScbrEnclaveLibraryV2(ScbrEnclaveLibrary):
    """An 'upgraded' engine: same vendor, new code, one extra ecall."""

    from repro.sgx.sdk import ecall as _ecall

    @_ecall
    def version(self) -> int:
        return 2


class TestEnclaveUpgrade:

    def test_mrsigner_seal_survives_upgrade(self, setup, vendor_key):
        """The standard SGX upgrade path: MRSIGNER-policy sealing."""
        platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        sealed, counter_id = enclave.ecall("seal_state", "mrsigner")

        upgraded = load_enclave(platform, ScbrEnclaveLibraryV2,
                                vendor_key, rsa_bits=768)
        assert upgraded.mr_enclave != enclave.mr_enclave  # new code
        assert upgraded.mr_signer == enclave.mr_signer    # same vendor
        assert upgraded.ecall("restore_state", sealed, counter_id) == 1
        assert upgraded.ecall("version") == 2
        assert publish(upgraded, keys, {"symbol": "HAL"}) == ["alice"]

    def test_mrenclave_seal_blocks_upgrade(self, setup, vendor_key):
        platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        sealed, counter_id = enclave.ecall("seal_state")  # MRENCLAVE
        upgraded = load_enclave(platform, ScbrEnclaveLibraryV2,
                                vendor_key, rsa_bits=768)
        with pytest.raises(AuthenticationError):
            upgraded.ecall("restore_state", sealed, counter_id)

    def test_other_vendor_blocked_even_with_mrsigner(self, setup):
        platform, enclave, keys = setup
        provision(enclave, keys)
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        sealed, counter_id = enclave.ecall("seal_state", "mrsigner")
        rogue_vendor = _generate_keypair_unchecked(768, 65537)
        rogue = load_enclave(platform, ScbrEnclaveLibraryV2,
                             rogue_vendor, rsa_bits=768)
        with pytest.raises(AuthenticationError):
            rogue.ecall("restore_state", sealed, counter_id)
