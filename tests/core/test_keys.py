"""Key-chain and group-key manager tests (revocation semantics)."""

import pytest

from repro.core.keys import GroupKeyManager, ProviderKeyChain
from repro.errors import AdmissionError, CryptoError


class TestProviderKeyChain:

    def test_keys_present(self):
        keys = ProviderKeyChain(rsa_bits=768)
        assert len(keys.sk) == 16
        assert keys.public_key.n == keys.rsa.n

    def test_channel_shares_sk(self):
        keys = ProviderKeyChain(rsa_bits=768)
        blob = keys.channel().protect(b"header")
        assert keys.channel().open(blob)[0] == b"header"

    def test_distinct_instances_distinct_secrets(self):
        a = ProviderKeyChain(rsa_bits=768)
        b = ProviderKeyChain(rsa_bits=768)
        assert a.sk != b.sk


class TestGroupKeyManager:

    def test_epoch_keys_stable_and_distinct(self):
        group = GroupKeyManager(master=b"m" * 32)
        k1 = group.current_key()
        group.rotate()
        k2 = group.current_key()
        assert k1 != k2
        assert group.key_for_epoch(1) == k1  # old epochs re-derivable

    def test_epoch_bounds(self):
        group = GroupKeyManager()
        with pytest.raises(CryptoError):
            group.key_for_epoch(0)
        with pytest.raises(CryptoError):
            group.key_for_epoch(group.epoch + 1)

    def test_membership(self):
        group = GroupKeyManager()
        secret = group.add_member("alice")
        assert group.is_member("alice")
        assert group.add_member("alice") == secret  # idempotent
        group.remove_member("alice")
        assert not group.is_member("alice")
        with pytest.raises(AdmissionError):
            group.remove_member("alice")

    def test_removal_rotates(self):
        group = GroupKeyManager()
        group.add_member("alice")
        group.add_member("bob")
        epoch_before = group.epoch
        group.remove_member("bob")
        assert group.epoch == epoch_before + 1

    def test_wrap_unwrap(self):
        group = GroupKeyManager()
        secret = group.add_member("alice")
        wrapped = group.wrap_current_key_for("alice")
        epoch, key = GroupKeyManager.unwrap_key(secret, wrapped,
                                                "alice")
        assert epoch == group.epoch
        assert key == group.current_key()

    def test_wrap_for_non_member_rejected(self):
        group = GroupKeyManager()
        with pytest.raises(AdmissionError):
            group.wrap_current_key_for("stranger")

    def test_unwrap_wrong_client_rejected(self):
        group = GroupKeyManager()
        secret = group.add_member("alice")
        wrapped = group.wrap_current_key_for("alice")
        with pytest.raises(CryptoError):
            GroupKeyManager.unwrap_key(secret, wrapped, "bob")

    def test_unwrap_wrong_secret_rejected(self):
        group = GroupKeyManager()
        group.add_member("alice")
        wrapped = group.wrap_current_key_for("alice")
        with pytest.raises(Exception):
            GroupKeyManager.unwrap_key(b"z" * 16, wrapped, "alice")

    def test_revoked_member_cannot_derive_new_epoch(self):
        """The actual security property behind §3.4's key rotation."""
        group = GroupKeyManager()
        group.add_member("alice")
        group.add_member("eve")
        eve_keys = {group.epoch: group.current_key()}
        group.remove_member("eve")  # rotates
        new_key = group.current_key()
        assert new_key not in eve_keys.values()
