"""Role tests: provider admission/revocation, publisher, client."""

import pytest

from repro.core.protocol import (MSG_ADMIT, MSG_REGISTER, build_admit,
                                 message_type, parse_publish,
                                 parse_register)
from repro.core.provider import ServiceProvider
from repro.core.publisher import Publisher
from repro.core.subscriber import Client
from repro.errors import AdmissionError, RoutingError
from repro.network.bus import MessageBus


@pytest.fixture()
def world():
    bus = MessageBus()
    provider = ServiceProvider(bus, rsa_bits=768)
    bus.endpoint("router")  # placeholder sink for REG frames
    return bus, provider


class TestAdmission:

    def test_admit_and_process(self, world):
        bus, provider = world
        client = Client(bus, "alice", provider.keys.public_key)
        frame = provider.admit_client("alice")
        assert message_type(frame) == MSG_ADMIT
        client.process_admission(frame)
        assert provider.client_status("alice") == "active"

    def test_admission_for_other_client_rejected(self, world):
        bus, provider = world
        client = Client(bus, "bob", provider.keys.public_key)
        frame = provider.admit_client("alice")
        with pytest.raises(RoutingError):
            client.process_admission(frame)

    def test_revoked_client_cannot_readmit(self, world):
        _bus, provider = world
        provider.admit_client("alice")
        provider.revoke_client("alice")
        assert provider.client_status("alice") == "revoked"
        with pytest.raises(AdmissionError):
            provider.admit_client("alice")

    def test_revoke_unknown_client(self, world):
        _bus, provider = world
        with pytest.raises(AdmissionError):
            provider.revoke_client("ghost")


class TestSubscriptionRequests:

    def test_request_produces_register_frame(self, world):
        bus, provider = world
        client = Client(bus, "alice", provider.keys.public_key)
        client.process_admission(provider.admit_client("alice"))
        frame = client.make_subscription_request({"symbol": "HAL"})
        register_frame = provider.handle_subscription_request(frame)
        assert message_type(register_frame) == MSG_REGISTER
        envelope, signature = parse_register(register_frame)
        provider.keys.public_key.verify(envelope, signature)

    def test_router_cannot_read_subscription(self, world):
        """The REG envelope leaks the client id (by design) but not
        the constraints."""
        bus, provider = world
        client = Client(bus, "alice", provider.keys.public_key)
        client.process_admission(provider.admit_client("alice"))
        frame = client.make_subscription_request(
            {"symbol": "SECRETCO", "price": ("<", 1234.5)})
        register_frame = provider.handle_subscription_request(frame)
        assert b"SECRETCO" not in register_frame
        envelope, _sig = parse_register(register_frame)
        assert b"alice" in envelope  # aad, visible for routing

    def test_unadmitted_client_rejected(self, world):
        bus, provider = world
        client = Client(bus, "stranger", provider.keys.public_key)
        frame = client.make_subscription_request({"symbol": "HAL"})
        with pytest.raises(AdmissionError):
            provider.handle_subscription_request(frame)

    def test_request_bound_to_client_identity(self, world):
        """Mallory cannot replay Alice's blob under her own name."""
        bus, provider = world
        alice = Client(bus, "alice", provider.keys.public_key)
        alice.process_admission(provider.admit_client("alice"))
        provider.admit_client("mallory")
        frame = alice.make_subscription_request({"symbol": "HAL"})
        from repro.core.protocol import (build_subscription_request,
                                         parse_subscription_request)
        _client, encrypted = parse_subscription_request(frame)
        stolen = build_subscription_request("mallory", encrypted)
        with pytest.raises(RoutingError):
            provider.handle_subscription_request(stolen)

    def test_pump_forwards_to_router(self, world):
        bus, provider = world
        client = Client(bus, "alice", provider.keys.public_key)
        client.process_admission(provider.admit_client("alice"))
        client.subscribe("provider", {"symbol": "HAL"})
        assert provider.pump("router") == 1
        sender, frames = bus.endpoint("router").recv()
        assert sender == "provider"
        assert message_type(frames[0]) == MSG_REGISTER


class TestPublisher:

    def test_publication_frame_structure(self, world):
        bus, provider = world
        publisher = Publisher(bus, provider.keys, provider.group)
        frame = publisher.make_publication(
            {"symbol": "HAL", "price": 48.0}, b"payload!")
        header_env, payload_env = parse_publish(frame)
        # The enclave (sharing SK) can open the header.
        plaintext, _aad = provider.keys.channel().open(header_env)
        assert b"HAL" in plaintext
        # Nobody without the group key reads the payload.
        assert b"payload!" not in payload_env

    def test_publish_counts(self, world):
        bus, provider = world
        bus.endpoint("router")
        publisher = Publisher(bus, provider.keys, provider.group)
        publisher.publish("router", {"x": 1}, b"p")
        assert publisher.published == 1
        assert bus.pending("router") == 1


class TestClientDeliveries:

    def test_decrypts_current_epoch(self, world):
        bus, provider = world
        client = Client(bus, "alice", provider.keys.public_key)
        client.process_admission(provider.admit_client("alice"))
        publisher = Publisher(bus, provider.keys, provider.group)
        frame = publisher.make_publication({"x": 1}, b"data")
        from repro.core.protocol import build_deliver
        _header, payload_env = parse_publish(frame)
        client.endpoint.send("alice", [build_deliver(payload_env)])
        client.pump()
        assert client.received == [b"data"]

    def test_old_epoch_after_rotation_still_readable(self, world):
        """Clients keep old epoch keys for in-flight messages."""
        bus, provider = world
        client = Client(bus, "alice", provider.keys.public_key)
        client.process_admission(provider.admit_client("alice"))
        publisher = Publisher(bus, provider.keys, provider.group)
        old_frame = publisher.make_publication({"x": 1}, b"old")
        provider.group.rotate()
        from repro.core.protocol import build_deliver, build_group_key
        client.endpoint.send("alice", [build_group_key(
            provider.group.wrap_current_key_for("alice"))])
        new_frame = publisher.make_publication({"x": 1}, b"new")
        _h, old_payload = parse_publish(old_frame)
        _h, new_payload = parse_publish(new_frame)
        client.endpoint.send("alice", [build_deliver(old_payload)])
        client.endpoint.send("alice", [build_deliver(new_payload)])
        client.pump()
        assert client.received == [b"old", b"new"]

    def test_revoked_client_cannot_decrypt_new(self, world):
        bus, provider = world
        eve = Client(bus, "eve", provider.keys.public_key)
        eve.process_admission(provider.admit_client("eve"))
        publisher = Publisher(bus, provider.keys, provider.group)
        provider.revoke_client("eve")
        frame = publisher.make_publication({"x": 1}, b"post-revocation")
        from repro.core.protocol import build_deliver
        _h, payload_env = parse_publish(frame)
        eve.endpoint.send("eve", [build_deliver(payload_env)])
        eve.pump()
        assert eve.received == []
        assert eve.undecryptable == 1

    def test_group_key_before_admission_rejected(self, world):
        bus, provider = world
        client = Client(bus, "alice", provider.keys.public_key)
        provider.admit_client("alice")
        from repro.core.protocol import build_group_key
        frame = build_group_key(
            provider.group.wrap_current_key_for("alice"))
        with pytest.raises(RoutingError):
            client.process_group_key(frame)
