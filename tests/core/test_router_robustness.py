"""Router fault isolation: error boundary, retry/backoff, DLQ."""

import pytest

from repro.core.deadletter import DeadLetterQueue
from repro.core.engine import ScbrEnclaveLibrary
from repro.core.protocol import build_deliver, build_register
from repro.core.provider import ServiceProvider
from repro.core.publisher import Publisher
from repro.core.router import RetryPolicy, Router
from repro.core.subscriber import Client
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.network.bus import MessageBus
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuilder
from repro.sgx.platform import SgxPlatform


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


@pytest.fixture()
def world(vendor_key):
    bus = MessageBus()
    platform = SgxPlatform(attestation_key_bits=768)
    ias = AttestationService(signing_key_bits=768)
    ias.register_platform(platform)
    expected = EnclaveBuilder(platform, ScbrEnclaveLibrary).measure()
    router = Router(bus, platform, vendor_key, rsa_bits=768)
    provider = ServiceProvider(bus, rsa_bits=768,
                               attestation_service=ias,
                               expected_mr_enclave=expected)
    provider.provision_router(router)
    publisher = Publisher(bus, provider.keys, provider.group)
    return bus, router, provider, publisher


def admit(bus, provider, client_id):
    client = Client(bus, client_id, provider.keys.public_key)
    client.process_admission(provider.admit_client(client_id))
    return client


class TestPerFrameIsolation:

    def test_good_bad_good_only_quarantines_the_bad(self, world):
        """Regression: one poison frame used to abort the drain and
        silently discard every remaining queued frame."""
        bus, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()

        good_one = publisher.make_publication({"symbol": "HAL"},
                                              b"before")
        bad = b"PUB:this is not a valid envelope"
        good_two = publisher.make_publication({"symbol": "HAL"},
                                              b"after")
        endpoint = bus.endpoint("chaos")
        endpoint.send("router", [good_one])
        endpoint.send("router", [bad])
        endpoint.send("router", [good_two])

        assert router.pump() == 3
        alice.pump()
        assert alice.received == [b"before", b"after"]
        letters = list(router.dead_letters)
        assert len(letters) == 1
        assert letters[0].frame == bad
        assert letters[0].reason == "poison-frame"
        assert router.metrics.counter(
            "router.frames_poisoned_total").value == 1

    def test_unparseable_frame_quarantined(self, world):
        bus, router, _provider, _publisher = world
        bus.endpoint("chaos").send("router", [b"\xff\xfe garbage"])
        router.pump()
        (letter,) = list(router.dead_letters)
        assert letter.reason == "poison-frame"
        assert "Error" in letter.detail

    def test_bad_signature_register_quarantined(self, world):
        """A REG frame the enclave rejects is poison, not fatal."""
        bus, router, _provider, _publisher = world
        forged = build_register(b"envelope", b"bogus signature")
        bus.endpoint("chaos").send("router", [forged])
        assert router.pump() == 1
        (letter,) = list(router.dead_letters)
        assert letter.reason == "poison-frame"
        # Direct calls (no pump boundary) still raise for programmatic
        # callers.
        from repro.errors import ScbrError
        with pytest.raises(ScbrError):
            router.handle_register(forged)

    def test_unexpected_type_quarantined_and_drain_continues(
            self, world):
        bus, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()
        chaos = bus.endpoint("chaos")
        chaos.send("router", [build_deliver(b"misdirected")])
        chaos.send("router",
                   [publisher.make_publication({"symbol": "HAL"},
                                               b"still flows")])
        assert router.pump() == 2
        alice.pump()
        assert alice.received == [b"still flows"]
        assert router.dead_letters.counts_by_reason == {
            "unexpected-type": 1}


class TestRetryPolicy:

    def test_capped_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=6, base_delay_ticks=1,
                             max_delay_ticks=8)
        assert [policy.delay_for(n) for n in range(1, 6)] == \
            [1, 2, 4, 8, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ticks=0)

    def test_backoff_ticks_respected(self, world):
        """Retries fire only when their backoff tick is reached."""
        bus, router, provider, publisher = world
        router.retry_policy = RetryPolicy(max_attempts=3,
                                          base_delay_ticks=2,
                                          max_delay_ticks=8)
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        from repro.core.messages import (encode_subscription,
                                         hybrid_encrypt)
        from repro.core.protocol import build_subscription_request
        from repro.matching.subscriptions import Subscription
        provider.admit_client("ghost")
        blob = encode_subscription(Subscription.parse(
            {"symbol": "HAL"}))
        provider.endpoint.send("provider", [build_subscription_request(
            "ghost", hybrid_encrypt(provider.keys.public_key, blob,
                                    aad=b"ghost"))])
        provider.pump("router")
        router.pump()
        publisher.publish("router", {"symbol": "HAL"}, b"x")
        router.pump()  # attempt 1 fails, retry due in 2 ticks
        assert router.pending_retries == 1
        attempts = router.metrics.counter(
            "router.delivery_attempts_total")
        before = attempts.value
        router.pump()  # tick too early: no retry yet
        assert attempts.value == before
        router.pump()  # backoff elapsed: attempt 2
        assert attempts.value == before + 1
        router.drain_retries()
        assert router.dropped == 1
        assert router.dead_letters.counts_by_reason[
            "retries-exhausted"] == 1


class TestStats:

    def test_stats_merges_engine_metrics(self, world):
        bus, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()
        publisher.publish("router", {"symbol": "HAL"}, b"m")
        router.pump()
        stats = router.stats()
        assert stats["subscriptions"] == 1
        metrics = stats["metrics"]
        assert metrics["router.publications_total"] == 1
        assert metrics["router.deliveries_total"] == 1
        assert metrics["engine.match_total"] == 1
        assert metrics["engine.register_total"] == 1
        assert metrics["bus.messages_total"] > 0
        assert metrics["router.match_fanout.count"] == 1


class TestDeadLetterQueue:

    def test_capacity_evicts_oldest_but_keeps_counts(self):
        dlq = DeadLetterQueue(capacity=2)
        for index in range(3):
            dlq.add(bytes([index]), "s", "poison-frame", tick=index)
        assert len(dlq) == 2
        assert [letter.frame for letter in dlq] == [b"\x01", b"\x02"]
        assert dlq.total == 3
        assert dlq.evicted == 1
        assert dlq.counts_by_reason["poison-frame"] == 3

    def test_drain_by_reason_keeps_accounting(self):
        dlq = DeadLetterQueue()
        dlq.add(b"a", "s", "poison-frame")
        dlq.add(b"b", "s", "retries-exhausted")
        drained = dlq.drain(reason="poison-frame")
        assert [letter.frame for letter in drained] == [b"a"]
        assert len(dlq) == 1
        assert dlq.counts_by_reason["poison-frame"] == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=0)

    def test_requeue_filters_by_reason_and_limit(self):
        dlq = DeadLetterQueue()
        dlq.add(b"a", "s", "retries-exhausted", client_id="alice")
        dlq.add(b"b", "s", "poison-frame")
        dlq.add(b"c", "s", "retries-exhausted", client_id="bob")
        seen = []
        assert dlq.requeue(lambda letter: seen.append(letter.frame),
                           reason="retries-exhausted", limit=1) == 1
        assert seen == [b"a"]          # oldest first
        assert [letter.frame for letter in dlq] == [b"b", b"c"]
        assert dlq.requeued == 1
        # accounting is history, not buffer state: untouched by requeue
        assert dlq.counts_by_reason["retries-exhausted"] == 2

    def test_requeue_handler_may_requarantine(self):
        """A letter whose second chance fails again is re-added by the
        handler — and must not be handed back to it in the same pass."""
        dlq = DeadLetterQueue()
        dlq.add(b"a", "s", "retries-exhausted")
        calls = []

        def still_failing(letter):
            calls.append(letter.frame)
            dlq.add(letter.frame, letter.sender, letter.reason)

        assert dlq.requeue(still_failing) == 1
        assert calls == [b"a"]
        assert len(dlq) == 1
        assert dlq.total == 2


class TestRouterRequeue:

    def test_quarantined_delivery_reaches_a_late_subscriber(self, world):
        """The operator path behind ``repro dlq``: a subscriber whose
        deliveries exhausted every retry connects later, and a requeue
        hands it the quarantined payloads with a fresh schedule."""
        bus, router, provider, publisher = world
        router.retry_policy = RetryPolicy(max_attempts=2,
                                          base_delay_ticks=1)
        admission = provider.admit_client("bob")
        from repro.core.messages import (encode_subscription,
                                         hybrid_encrypt)
        from repro.core.protocol import build_subscription_request
        from repro.matching.subscriptions import Subscription
        blob = encode_subscription(Subscription.parse({"symbol": "HAL"}))
        provider.endpoint.send("provider", [build_subscription_request(
            "bob", hybrid_encrypt(provider.keys.public_key, blob,
                                  aad=b"bob"))])
        provider.pump("router")
        router.pump()

        publisher.publish("router", {"symbol": "HAL"}, b"missed-tick")
        router.pump()
        router.drain_retries()
        letters = list(router.dead_letters)
        assert [letter.client_id for letter in letters] == ["bob"]
        assert letters[0].reason == "retries-exhausted"

        bob = Client(bus, "bob", provider.keys.public_key)
        bob.process_admission(admission)
        assert router.requeue_dead_letters() == 1
        bob.pump()
        assert bob.received == [b"missed-tick"]
        assert len(router.dead_letters) == 0
        assert router.metrics.counter(
            "router.dead_letters_requeued_total").value == 1

    def test_requeue_without_fix_just_requarantines(self, world):
        bus, router, provider, publisher = world
        router.retry_policy = RetryPolicy(max_attempts=2,
                                          base_delay_ticks=1)
        from repro.core.messages import (encode_subscription,
                                         hybrid_encrypt)
        from repro.core.protocol import build_subscription_request
        from repro.matching.subscriptions import Subscription
        provider.admit_client("ghost")
        blob = encode_subscription(Subscription.parse({"symbol": "HAL"}))
        provider.endpoint.send("provider", [build_subscription_request(
            "ghost", hybrid_encrypt(provider.keys.public_key, blob,
                                    aad=b"ghost"))])
        provider.pump("router")
        router.pump()
        publisher.publish("router", {"symbol": "HAL"}, b"x")
        router.pump()
        router.drain_retries()
        assert len(router.dead_letters) == 1

        assert router.requeue_dead_letters() == 1
        router.drain_retries()
        # ghost is still offline: quarantined again, nothing lost
        assert len(router.dead_letters) == 1
        assert router.dead_letters.counts_by_reason[
            "retries-exhausted"] == 2


class TestCloseIdempotency:
    """Regression: Router.close() used to EREMOVE the enclave
    unconditionally, so a double close — or a close after an injected
    crash had already destroyed the enclave — raised out of a teardown
    path that every caller treats as infallible."""

    def test_close_twice_is_a_noop(self, world):
        _bus, router, _provider, _publisher = world
        router.close()
        assert router.closed
        router.close()

    def test_close_over_a_destroyed_enclave(self, world):
        _bus, router, _provider, _publisher = world
        router.enclave.destroy()   # a crash got there first
        router.close()
        router.close()


class TestRetryJitter:
    """Seeded backoff jitter: retry storms must de-correlate.

    Two routers failed by one shared fault used to schedule every
    retry on the same future tick; jitter spreads them while keeping
    any seeded run exactly replayable.
    """

    POLICY = RetryPolicy(max_attempts=99, base_delay_ticks=2,
                         max_delay_ticks=2, jitter_ticks=6)

    @staticmethod
    def _jitter_draws(router, n=16):
        from repro.errors import NetworkError
        router.retry_policy = TestRetryJitter.POLICY
        draws = []
        for _ in range(n):
            router._delivery_failed("ghost", b"frame", 1,
                                    NetworkError("down"))
            pending = router._retries.pop()
            draws.append(pending.due_tick - router.tick - 2)
        return draws

    def _fresh_router(self, vendor_key, name, retry_seed=None):
        bus = MessageBus()
        platform = SgxPlatform(attestation_key_bits=768)
        return Router(bus, platform, vendor_key, name=name,
                      rsa_bits=768, retry_seed=retry_seed)

    def test_jitter_stays_inside_the_policy_bound(self, world):
        _bus, router, _provider, _publisher = world
        draws = self._jitter_draws(router)
        assert all(0 <= draw <= 6 for draw in draws)
        assert len(set(draws)) > 1  # it does actually jitter

    def test_distinct_routers_decorrelate(self, vendor_key):
        a = self._fresh_router(vendor_key, "router-a")
        b = self._fresh_router(vendor_key, "router-b")
        try:
            assert self._jitter_draws(a) != self._jitter_draws(b)
        finally:
            a.close()
            b.close()

    def test_same_name_replays_identically(self, vendor_key):
        draws = []
        for _ in range(2):
            router = self._fresh_router(vendor_key, "router-a")
            try:
                draws.append(self._jitter_draws(router))
            finally:
                router.close()
        assert draws[0] == draws[1]

    def test_explicit_seed_overrides_the_name(self, vendor_key):
        a = self._fresh_router(vendor_key, "router-a", retry_seed=5)
        b = self._fresh_router(vendor_key, "router-b", retry_seed=5)
        try:
            assert self._jitter_draws(a) == self._jitter_draws(b)
        finally:
            a.close()
            b.close()

    def test_zero_jitter_stays_deterministic(self, world):
        from repro.errors import NetworkError
        _bus, router, _provider, _publisher = world
        router.retry_policy = RetryPolicy(max_attempts=99,
                                          base_delay_ticks=2,
                                          max_delay_ticks=2)
        for _ in range(4):
            router._delivery_failed("ghost", b"frame", 1,
                                    NetworkError("down"))
            assert router._retries.pop().due_tick == router.tick + 2
