"""Protocol frame builders/parsers: roundtrips and malformed input."""

import pytest
from hypothesis import given, strategies as st

from repro.core.protocol import (MSG_ADMIT, MSG_DELIVER, MSG_GROUP_KEY,
                                 MSG_PUBLISH, MSG_REGISTER,
                                 MSG_SUBSCRIPTION_REQUEST,
                                 MSG_UNREGISTER, build_admit,
                                 build_deliver, build_group_key,
                                 build_publish, build_register,
                                 build_subscription_request,
                                 build_unregister, message_type,
                                 parse_admit, parse_deliver,
                                 parse_group_key, parse_publish,
                                 parse_register,
                                 parse_subscription_request,
                                 parse_unregister)
from repro.errors import RoutingError

binary = st.binary(max_size=60)


class TestRoundtrips:

    @given(st.text(alphabet="abcdef0123456789-", min_size=1,
                   max_size=20), binary)
    def test_subscription_request(self, client_id, blob):
        frame = build_subscription_request(client_id, blob)
        assert message_type(frame) == MSG_SUBSCRIPTION_REQUEST
        assert parse_subscription_request(frame) == (client_id, blob)

    @given(binary, binary)
    def test_register(self, envelope, signature):
        frame = build_register(envelope, signature)
        assert message_type(frame) == MSG_REGISTER
        assert parse_register(frame) == (envelope, signature)

    @given(binary, binary)
    def test_unregister(self, envelope, signature):
        frame = build_unregister(envelope, signature)
        assert message_type(frame) == MSG_UNREGISTER
        assert parse_unregister(frame) == (envelope, signature)

    @given(binary, binary)
    def test_publish(self, header, payload):
        frame = build_publish(header, payload)
        assert message_type(frame) == MSG_PUBLISH
        assert parse_publish(frame) == (header, payload)

    @given(binary)
    def test_deliver(self, payload):
        frame = build_deliver(payload)
        assert message_type(frame) == MSG_DELIVER
        assert parse_deliver(frame) == payload

    @given(st.text(alphabet="abc", min_size=1, max_size=8), binary,
           binary)
    def test_admit(self, client_id, secret, wrapped):
        frame = build_admit(client_id, secret, wrapped)
        assert message_type(frame) == MSG_ADMIT
        assert parse_admit(frame) == (client_id, secret, wrapped)

    @given(binary)
    def test_group_key(self, wrapped):
        frame = build_group_key(wrapped)
        assert message_type(frame) == MSG_GROUP_KEY
        assert parse_group_key(frame) == wrapped


class TestTypeConfusion:

    def test_wrong_type_rejected_by_every_parser(self):
        frame = build_deliver(b"payload")
        for parser in (parse_register, parse_unregister, parse_publish,
                       parse_admit, parse_group_key,
                       parse_subscription_request):
            with pytest.raises(RoutingError):
                parser(frame)

    def test_malformed_body(self):
        from repro.core.messages import to_wire
        for kind, parser in ((MSG_REGISTER, parse_register),
                             (MSG_PUBLISH, parse_publish),
                             (MSG_ADMIT, parse_admit)):
            with pytest.raises(Exception):
                parser(to_wire(kind, b"\x00\x01junk"))

    def test_message_type_peek_does_not_consume(self):
        frame = build_register(b"a", b"b")
        assert message_type(frame) == MSG_REGISTER
        assert parse_register(frame) == (b"a", b"b")


class TestRouterAndClientRejectUnknownFrames:

    def test_router_unknown_frame_dead_lettered(self):
        """The pump no longer aborts on an unexpected frame type: the
        frame is quarantined with its cause and the drain continues."""
        from repro.core.router import Router
        from repro.crypto.rsa import _generate_keypair_unchecked
        from repro.network.bus import MessageBus
        from repro.sgx.platform import SgxPlatform
        bus = MessageBus()
        router = Router(bus, SgxPlatform(attestation_key_bits=768),
                        _generate_keypair_unchecked(768, 65537),
                        rsa_bits=768)
        bus.endpoint("peer").send("router", [build_deliver(b"x")])
        assert router.pump() == 1
        letters = list(router.dead_letters)
        assert len(letters) == 1
        assert letters[0].reason == "unexpected-type"
        assert letters[0].sender == "peer"

    def test_client_unknown_frame(self):
        from repro.core.subscriber import Client
        from repro.crypto.rsa import _generate_keypair_unchecked
        from repro.network.bus import MessageBus
        bus = MessageBus()
        key = _generate_keypair_unchecked(768, 65537)
        client = Client(bus, "alice", key.public_key)
        bus.endpoint("peer").send("alice", [build_register(b"a", b"b")])
        with pytest.raises(RoutingError):
            client.pump()
