"""Matcher-cluster tests: slicing, correctness, parallel accounting."""

import pytest

from repro.core.cluster import MatcherCluster
from repro.errors import RoutingError
from repro.matching.events import Event
from repro.matching.poset import ContainmentForest
from repro.matching.subscriptions import Subscription
from repro.sgx.cpu import scaled_spec
from repro.workloads.datasets import build_dataset

SPEC = scaled_spec(llc_bytes=256 * 1024)


class TestConstruction:

    def test_validation(self):
        with pytest.raises(RoutingError):
            MatcherCluster(0)
        with pytest.raises(RoutingError):
            MatcherCluster(2, assignment="random-teleport")

    def test_round_robin_balances(self):
        cluster = MatcherCluster(3, spec=SPEC)
        for i in range(9):
            cluster.register(Subscription.parse({"x": (i, i + 1)}), i)
        assert cluster.slice_sizes() == [3, 3, 3]

    def test_symbol_hash_groups_symbols(self):
        cluster = MatcherCluster(4, spec=SPEC,
                                 assignment="symbol-hash")
        slice_of = {}
        for i in range(20):
            symbol = f"SYM{i % 5}"
            sub = Subscription.parse({"symbol": symbol,
                                      "x": (i, i + 10)})
            slice_id = cluster.register(sub, i)
            if symbol in slice_of:
                assert slice_of[symbol] == slice_id
            slice_of[symbol] = slice_id

    def test_symbol_hash_fallback_for_rangeonly(self):
        cluster = MatcherCluster(2, spec=SPEC,
                                 assignment="symbol-hash")
        for i in range(4):
            cluster.register(Subscription.parse({"x": (0, i + 1)}), i)
        assert cluster.slice_sizes() == [2, 2]  # round-robin fallback


class TestMatching:

    def test_union_of_slices(self):
        cluster = MatcherCluster(3, spec=SPEC)
        cluster.register(Subscription.parse({"x": (0, 10)}), "a")
        cluster.register(Subscription.parse({"x": (5, 15)}), "b")
        cluster.register(Subscription.parse({"y": (0, 10)}), "c")
        result = cluster.match(Event({"x": 7, "y": 5}))
        assert result.subscribers == {"a", "b", "c"}
        assert len(result.slice_latencies_us) == 3
        assert result.latency_us == max(result.slice_latencies_us)

    def test_equivalent_to_single_forest(self):
        dataset = build_dataset("e80a1", 600, 10)
        reference = ContainmentForest()
        for policy in MatcherCluster.ASSIGNMENTS:
            cluster = MatcherCluster(4, spec=SPEC, assignment=policy)
            for index, subscription in enumerate(dataset.subscriptions):
                cluster.register(subscription, index)
            if not reference.n_subscriptions:
                for index, subscription in enumerate(
                        dataset.subscriptions):
                    reference.insert(subscription, index)
            for event in dataset.publications:
                assert cluster.match(event).subscribers == \
                    reference.match(event)

    def test_scaleout_reduces_latency(self):
        dataset = build_dataset("e80a1", 3000, 6)

        def latency(n_slices):
            cluster = MatcherCluster(n_slices, spec=SPEC)
            for index, subscription in enumerate(dataset.subscriptions):
                cluster.register(subscription, index)
            cluster.warm()
            for event in dataset.publications:  # warm-up
                cluster.match(event)
            return sum(cluster.match(e).latency_us
                       for e in dataset.publications)

        assert latency(4) < latency(1)

    def test_empty_cluster_match(self):
        cluster = MatcherCluster(2, spec=SPEC)
        result = cluster.match(Event({"x": 1}))
        assert result.subscribers == set()


class TestSliceRecovery:

    def test_recover_slice_rebuilds_from_journal(self):
        dataset = build_dataset("e80a1", 300, 8)
        cluster = MatcherCluster(3, spec=SPEC)
        for index, subscription in enumerate(dataset.subscriptions):
            cluster.register(subscription, index)
        sizes_before = cluster.slice_sizes()
        expected = [cluster.match(event).subscribers
                    for event in dataset.publications]

        replayed = cluster.recover_slice(1)
        assert replayed == sizes_before[1]
        assert cluster.slices_recovered == 1
        assert cluster.slice_sizes() == sizes_before
        assert [cluster.match(event).subscribers
                for event in dataset.publications] == expected

    def test_recover_each_slice_in_turn(self):
        cluster = MatcherCluster(2, spec=SPEC)
        cluster.register(Subscription.parse({"x": (0, 10)}), "a")
        cluster.register(Subscription.parse({"x": (5, 15)}), "b")
        assert cluster.recover_slice(0) == 1
        assert cluster.recover_slice(1) == 1
        assert cluster.match(
            Event({"x": 7})).subscribers == {"a", "b"}

    def test_recover_slice_validates_id(self):
        cluster = MatcherCluster(2, spec=SPEC)
        with pytest.raises(RoutingError):
            cluster.recover_slice(2)
        with pytest.raises(RoutingError):
            cluster.recover_slice(-1)
