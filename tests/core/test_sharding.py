"""EPC-aware sharding: routing table, policy, live migration, chaos.

The contract under test is the ISSUE-10 tentpole: a cluster with an
explicit mutable routing table whose live migrations are byte-exact —
match sets identical to an unsharded engine before, during and after a
migration, no registration lost or duplicated, on both execution
backends, and with crashes landing mid-window wherever a seeded
schedule puts them.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cluster import MatcherCluster
from repro.core.sharding import (RoutingTable, ScaleAction,
                                 ShardingPolicy, SliceSample)
from repro.errors import RoutingError
from repro.matching.events import Event
from repro.matching.poset import ContainmentForest
from repro.matching.subscriptions import Subscription
from repro.obs.metrics import MetricsRegistry
from repro.recovery.supervisor import CrashSchedule
from repro.sgx.cpu import scaled_spec
from repro.workloads.datasets import build_dataset

SPEC = scaled_spec(llc_bytes=256 * 1024)


def _sample(slice_id, subscriptions=100, index_bytes=0, live_bytes=0,
            allocated_bytes=0, resident_bytes=0, epc_faults=0):
    return SliceSample(slice_id=slice_id, subscriptions=subscriptions,
                       index_bytes=index_bytes, live_bytes=live_bytes,
                       allocated_bytes=allocated_bytes,
                       resident_bytes=resident_bytes,
                       epc_faults=epc_faults)


class TestRoutingTable:

    def test_assign_lookup_remove(self):
        table = RoutingTable(2)
        table.assign(("k1", "a"), 0)
        table.assign(("k2", "b"), 1)
        assert table.slice_of(("k1", "a")) == 0
        assert ("k1", "a") in table
        assert len(table) == 2
        assert table.counts() == [1, 1]
        assert table.remove(("k1", "a")) == 0
        assert table.slice_of(("k1", "a")) is None
        assert len(table) == 1

    def test_members_keep_insertion_order(self):
        table = RoutingTable(1)
        keys = [(f"k{i}", i) for i in range(10)]
        for key in keys:
            table.assign(key, 0)
        assert table.members(0) == keys

    def test_double_assign_and_missing_remove_raise(self):
        table = RoutingTable(1)
        table.assign(("k", "a"), 0)
        with pytest.raises(RoutingError):
            table.assign(("k", "a"), 0)
        with pytest.raises(RoutingError):
            table.remove(("ghost", "g"))
        with pytest.raises(RoutingError):
            table.assign(("k2", "b"), 5)
        with pytest.raises(RoutingError):
            RoutingTable(0)

    def test_flip_moves_all_under_one_version(self):
        table = RoutingTable(2)
        keys = [(f"k{i}", i) for i in range(4)]
        for key in keys:
            table.assign(key, 0)
        version = table.version
        table.flip({key: 1 for key in keys[:3]})
        assert table.version == version + 1
        assert table.counts() == [1, 3]
        assert table.members(1) == keys[:3]

    def test_flip_validates_before_moving_anything(self):
        table = RoutingTable(2)
        table.assign(("k", "a"), 0)
        with pytest.raises(RoutingError):
            table.flip({("k", "a"): 1, ("ghost", "g"): 1})
        # the valid half of the batch must not have moved
        assert table.slice_of(("k", "a")) == 0
        with pytest.raises(RoutingError):
            table.flip({("k", "a"): 7})

    def test_add_slice(self):
        table = RoutingTable(1)
        assert table.add_slice() == 1
        table.assign(("k", "a"), 1)
        assert table.counts() == [0, 1]


class TestShardingPolicy:

    def test_validation(self):
        for kwargs in ({"split_threshold_bytes": 0},
                       {"grow_fill": 0.0}, {"grow_fill": 1.5},
                       {"split_fraction": 1.0}, {"max_slices": 0},
                       {"rebalance_ratio": 1.0}, {"merge_fill": 2.0}):
            with pytest.raises(RoutingError):
                ShardingPolicy(**kwargs)

    def test_splits_every_slice_over_threshold(self):
        policy = ShardingPolicy(split_threshold_bytes=1000,
                                min_split_subscriptions=10)
        actions = policy.decide([
            _sample(0, subscriptions=100, index_bytes=1500),
            _sample(1, subscriptions=100, index_bytes=400),
            _sample(2, subscriptions=100, index_bytes=1000)])
        assert [(a.kind, a.source) for a in actions] == \
            [("split", 0), ("split", 2)]
        assert all(a.move == 50 for a in actions)

    def test_split_respects_min_subscriptions_and_headroom(self):
        policy = ShardingPolicy(split_threshold_bytes=1000,
                                min_split_subscriptions=200)
        # too few subscriptions to split: falls through to a grow
        actions = policy.decide([_sample(0, subscriptions=100,
                                         index_bytes=5000)])
        assert [a.kind for a in actions] == ["grow"]
        capped = ShardingPolicy(split_threshold_bytes=1000,
                                min_split_subscriptions=10,
                                max_slices=2)
        actions = capped.decide([
            _sample(0, subscriptions=50, index_bytes=2000),
            _sample(1, subscriptions=50, index_bytes=2000)])
        assert actions == []  # no headroom left

    def test_grow_when_all_slices_near_threshold(self):
        policy = ShardingPolicy(split_threshold_bytes=1000,
                                grow_fill=0.75)
        actions = policy.decide([_sample(0, index_bytes=800),
                                 _sample(1, index_bytes=900)])
        assert [a.kind for a in actions] == ["grow"]
        # one cold slice suppresses the grow
        assert policy.decide([_sample(0, index_bytes=800),
                              _sample(1, index_bytes=100)]) == []

    def test_rebalance_largest_into_smallest(self):
        policy = ShardingPolicy(split_threshold_bytes=10_000,
                                rebalance_ratio=4.0)
        actions = policy.decide([
            _sample(0, subscriptions=400, index_bytes=8000),
            _sample(1, subscriptions=40, index_bytes=800)])
        assert [(a.kind, a.source, a.target, a.move)
                for a in actions] == [("rebalance", 0, 1, 180)]
        # below rebalance_min_bytes nothing moves
        quiet = policy.decide([
            _sample(0, subscriptions=40, index_bytes=800),
            _sample(1, subscriptions=4, index_bytes=80)])
        assert quiet == []

    def test_merge_only_when_enabled(self):
        samples = [_sample(0, subscriptions=10, index_bytes=100),
                   _sample(1, subscriptions=10, index_bytes=100),
                   _sample(2, subscriptions=10, index_bytes=100)]
        assert ShardingPolicy(
            split_threshold_bytes=10_000).decide(samples) == []
        actions = ShardingPolicy(split_threshold_bytes=10_000,
                                 merge_fill=0.5).decide(samples)
        assert [(a.kind, a.source, a.target)
                for a in actions] == [("merge", 0, 1)]

    def test_working_set_is_max_of_index_and_live(self):
        assert _sample(0, index_bytes=10,
                       live_bytes=20).working_set_bytes == 20
        assert _sample(0, index_bytes=30,
                       live_bytes=20).working_set_bytes == 30

    def test_empty_samples(self):
        assert ShardingPolicy().decide([]) == []


def _registered_cluster(n_slices=2, n_subs=240, backend="serial",
                        assignment="round-robin", seed=2016):
    dataset = build_dataset("e80a1", n_subs, 40, seed=seed)
    cluster = MatcherCluster(n_slices, spec=SPEC, backend=backend,
                             assignment=assignment)
    reference = ContainmentForest()
    for index, subscription in enumerate(dataset.subscriptions):
        cluster.register(subscription, f"c{index}")
        reference.insert(subscription, f"c{index}")
    return cluster, reference, dataset


def _assert_matches_reference(cluster, reference, events):
    for event in events:
        assert cluster.match(event).subscribers == \
            reference.match(event)


class TestEpcAwarePlacement:

    def test_least_loaded_placement_balances_bytes(self):
        cluster = MatcherCluster(3, spec=SPEC, assignment="epc-aware")
        for i in range(60):
            cluster.register(
                Subscription.parse({"x": (i, i + 1)}), i)
        sizes = cluster.slice_sizes()
        assert sum(sizes) == 60
        assert max(sizes) - min(sizes) <= 1

    def test_reregistration_is_idempotent_and_stays_put(self):
        cluster = MatcherCluster(2, spec=SPEC, assignment="epc-aware")
        sub = Subscription.parse({"x": (0, 10)})
        first = cluster.register(sub, "a")
        assert cluster.register(sub, "a") == first
        assert cluster.n_subscriptions == 1

    def test_unregister_shrinks_working_set(self):
        cluster = MatcherCluster(1, spec=SPEC)
        subs = [Subscription.parse({"x": (i, i + 1)})
                for i in range(20)]
        for i, sub in enumerate(subs):
            cluster.register(sub, i)
        before = cluster.working_set_bytes()[0]
        for i, sub in enumerate(subs[:10]):
            assert cluster.unregister(sub, i)
        assert cluster.working_set_bytes()[0] < before
        assert not cluster.unregister(subs[0], 0)  # already gone
        assert cluster.match(
            Event({"x": 15.5})).subscribers == {15}


class TestLiveMigration:

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_match_sets_exact_before_during_after(self, backend):
        cluster, reference, dataset = _registered_cluster(
            backend=backend)
        try:
            events = dataset.publications
            _assert_matches_reference(cluster, reference, events)
            ticket = cluster.stage_migration(0)
            # staged window: source still serves the staged keys
            _assert_matches_reference(cluster, reference, events)
            moved = cluster.complete_migration(ticket)
            assert moved == len(ticket.keys)
            _assert_matches_reference(cluster, reference, events)
            assert cluster.n_subscriptions == \
                reference.n_subscriptions
        finally:
            cluster.close()

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_window_writes_replay_onto_target(self, backend):
        cluster, reference, dataset = _registered_cluster(
            backend=backend)
        try:
            staged_keys = cluster.table.members(0)
            ticket = cluster.stage_migration(0, keys=staged_keys)
            # withdraw one staged registration mid-window...
            key = staged_keys[3]
            subscription, subscriber = cluster._objects[key]
            assert cluster.unregister(subscription, subscriber)
            reference.remove_subscriber(subscription, subscriber)
            # ...and re-register it (lands wherever placement says)
            cluster.register(subscription, subscriber)
            reference.insert(subscription, subscriber)
            moved = cluster.complete_migration(ticket)
            # the re-registered copy may live elsewhere now; everyone
            # still routed to the source moved exactly once
            assert moved == len([k for k in staged_keys
                                 if cluster.table.slice_of(k) ==
                                 ticket.target])
            _assert_matches_reference(cluster, reference,
                                      dataset.publications)
        finally:
            cluster.close()

    def test_in_flight_match_batch_sees_no_tear(self):
        cluster, reference, dataset = _registered_cluster()
        events = dataset.publications
        expected = [reference.match(event) for event in events]
        ticket = cluster.stage_migration(0)
        during = cluster.match_batch(events)
        cluster.complete_migration(ticket)
        after = cluster.match_batch(events)
        assert [r.subscribers for r in during] == expected
        assert [r.subscribers for r in after] == expected

    def test_backends_agree_on_latency_through_migration(self):
        serial, _, dataset = _registered_cluster(backend="serial")
        process, _, _ = _registered_cluster(backend="process")
        try:
            for cluster in (serial, process):
                cluster.migrate(0)
                cluster.warm()
            for a, b in zip(serial.match_batch(dataset.publications),
                            process.match_batch(dataset.publications)):
                assert a.subscribers == b.subscribers
                assert a.slice_latencies_us == b.slice_latencies_us
        finally:
            process.close()

    def test_tampered_checkpoint_refuses_to_complete(self):
        cluster, _, _ = _registered_cluster()
        ticket = cluster.stage_migration(0)
        sealed = bytearray(ticket.checkpoint.sealed_bytes)
        sealed[len(sealed) // 2] ^= 0xFF
        object.__setattr__(ticket.checkpoint, "sealed_bytes",
                           bytes(sealed))
        with pytest.raises(RoutingError, match="verification"):
            cluster.complete_migration(ticket)

    def test_ticket_lifecycle_guards(self):
        cluster, _, _ = _registered_cluster()
        ticket = cluster.migrate(0)
        assert ticket.state == "completed"
        with pytest.raises(RoutingError):
            cluster.complete_migration(ticket)
        with pytest.raises(RoutingError):
            cluster.abort_migration(ticket)
        second = cluster.stage_migration(0)
        with pytest.raises(RoutingError):  # one staged per source
            cluster.stage_migration(0)
        cluster.abort_migration(second)
        assert cluster.migrations_aborted == 1
        # after the abort the source can stage again
        cluster.stage_migration(0)

    def test_stage_validates_inputs(self):
        cluster, _, _ = _registered_cluster()
        with pytest.raises(RoutingError):
            cluster.stage_migration(9)
        with pytest.raises(RoutingError):
            cluster.stage_migration(0, target=0)
        foreign = cluster.table.members(1)[0]
        with pytest.raises(RoutingError):
            cluster.stage_migration(0, keys=[foreign])
        empty = cluster.add_slice()
        with pytest.raises(RoutingError):
            cluster.stage_migration(empty)

    def test_migrate_to_fresh_slice_grows_cluster(self):
        cluster, reference, dataset = _registered_cluster()
        before = cluster.n_slices
        ticket = cluster.migrate(0, fraction=0.25)
        assert cluster.n_slices == before + 1
        assert ticket.target == before
        assert cluster.slice_sizes()[ticket.target] == ticket.moved
        _assert_matches_reference(cluster, reference,
                                  dataset.publications)


class TestCrashDuringMigration:

    def test_source_crash_while_staged_recovers_and_completes(self):
        """Kill the source worker mid-window (victim drawn from a
        seeded CrashSchedule): recovery replays the routing table's
        truth, the staged ticket survives, completion stays exact."""
        cluster, reference, dataset = _registered_cluster(
            n_slices=3, backend="process")
        try:
            schedule = CrashSchedule(seed=42)
            source = schedule.pick(cluster.n_slices)
            ticket = cluster.stage_migration(source)
            table_before = {
                key: cluster.table.slice_of(key)
                for key in cluster.table.members(source)}
            cluster._workers[source].kill()
            replayed = cluster.recover_slice(source)
            assert replayed == len(table_before)
            # recovery must not touch the routing table
            assert all(cluster.table.slice_of(key) == owner
                       for key, owner in table_before.items())
            assert cluster.complete_migration(ticket) == \
                len(ticket.keys)
            _assert_matches_reference(cluster, reference,
                                      dataset.publications)
        finally:
            cluster.close()

    def test_target_crash_while_staged_recovers_and_completes(self):
        cluster, reference, dataset = _registered_cluster(
            n_slices=2, backend="process")
        try:
            ticket = cluster.stage_migration(0, target=1)
            cluster._workers[ticket.target].kill()
            cluster.recover_slice(ticket.target)
            cluster.complete_migration(ticket)
            _assert_matches_reference(cluster, reference,
                                      dataset.publications)
        finally:
            cluster.close()

    def test_seeded_crash_schedule_through_migration_sequence(self):
        """A whole seeded chaos run: stage, crash a scheduled victim,
        recover, complete — repeatedly — with zero lost or duplicated
        registrations at every step."""
        cluster, reference, dataset = _registered_cluster(
            n_slices=2, n_subs=160, backend="process")
        try:
            schedule = CrashSchedule(seed=7)
            for _ in range(3):
                sources = [s for s in range(cluster.n_slices)
                           if cluster.table.members(s)]
                source = sources[schedule.pick(len(sources))]
                ticket = cluster.stage_migration(source)
                victim = schedule.pick(cluster.n_slices)
                cluster._workers[victim].kill()
                cluster.recover_slice(victim)
                cluster.complete_migration(ticket)
                assert cluster.n_subscriptions == \
                    reference.n_subscriptions
                assert sum(cluster.slice_sizes()) == \
                    reference.n_subscriptions
                _assert_matches_reference(cluster, reference,
                                          dataset.publications)
        finally:
            cluster.close()


class TestAutoscale:

    def test_split_on_threshold(self):
        cluster, reference, dataset = _registered_cluster(n_slices=1)
        threshold = cluster.working_set_bytes()[0] // 2
        policy = ShardingPolicy(split_threshold_bytes=threshold,
                                min_split_subscriptions=10,
                                max_slices=8)
        actions = cluster.autoscale(policy)
        assert [a.kind for a in actions] == ["split"]
        assert cluster.n_slices == 2
        assert cluster.splits == 1
        assert cluster.migrations_completed == 1
        _assert_matches_reference(cluster, reference,
                                  dataset.publications)

    def test_dry_run_plans_without_applying(self):
        cluster, _, _ = _registered_cluster(n_slices=1)
        threshold = cluster.working_set_bytes()[0] // 2
        policy = ShardingPolicy(split_threshold_bytes=threshold,
                                min_split_subscriptions=10,
                                dry_run=True)
        actions = cluster.autoscale(policy)
        assert [a.kind for a in actions] == ["split"]
        assert cluster.n_slices == 1
        assert cluster.migrations_staged == 0

    def test_grow_adds_empty_slice(self):
        cluster, _, _ = _registered_cluster(n_slices=2)
        fill = max(cluster.working_set_bytes())
        policy = ShardingPolicy(split_threshold_bytes=fill * 4,
                                grow_fill=0.1)
        actions = cluster.autoscale(policy)
        assert [a.kind for a in actions] == ["grow"]
        assert cluster.n_slices == 3
        assert cluster.slice_sizes()[2] == 0

    def test_merge_retires_source_from_placement(self):
        cluster, reference, dataset = _registered_cluster(
            n_slices=3, n_subs=60)
        policy = ShardingPolicy(split_threshold_bytes=10 ** 9,
                                merge_fill=1.0)
        actions = cluster.autoscale(policy)
        assert [a.kind for a in actions] == ["merge"]
        retired = actions[0].source
        assert cluster.slice_sizes()[retired] == 0
        for i in range(40):
            placed = cluster.register(
                Subscription.parse({"z": (i, i + 1)}), f"m{i}")
            assert placed != retired
        _assert_matches_reference(cluster, reference,
                                  dataset.publications)

    def test_repeated_autoscale_converges_and_stays_exact(self):
        cluster, reference, dataset = _registered_cluster(
            n_slices=1, n_subs=300)
        threshold = max(cluster.working_set_bytes()[0] // 4, 1)
        policy = ShardingPolicy(split_threshold_bytes=threshold,
                                min_split_subscriptions=10,
                                max_slices=16)
        for _ in range(6):
            if not cluster.autoscale(policy):
                break
        assert cluster.n_slices > 1
        assert max(cluster.working_set_bytes()) < \
            cluster.working_set_bytes()[0] * 4
        _assert_matches_reference(cluster, reference,
                                  dataset.publications)


class TestClusterMetrics:

    def test_gauges_track_occupancy_and_migrations(self):
        registry = MetricsRegistry()
        cluster = MatcherCluster(2, spec=SPEC, metrics=registry)
        for i in range(30):
            cluster.register(
                Subscription.parse({"x": (i, i + 2)}), i)
        snapshot = registry.snapshot()
        assert snapshot["cluster.slices"] == 2
        assert snapshot["cluster.subscriptions"] == 30
        assert snapshot["cluster.slice_subscriptions.0"] + \
            snapshot["cluster.slice_subscriptions.1"] == 30
        assert snapshot["cluster.slice_bytes.0"] > 0
        assert snapshot["cluster.migrations_completed"] == 0

        cluster.migrate(0)
        snapshot = registry.snapshot()
        assert snapshot["cluster.slices"] == 3
        assert snapshot["cluster.migrations_completed"] == 1
        assert snapshot["cluster.migrated_subscriptions"] > 0
        assert snapshot["cluster.routing_version"] == 1
        # the migration target got gauges the moment it was added
        assert "cluster.slice_subscriptions.2" in snapshot
        assert snapshot["cluster.slice_subscriptions.2"] > 0

    def test_resident_pages_gauge_counts_epc_pages(self):
        registry = MetricsRegistry()
        cluster = MatcherCluster(1, spec=SPEC, metrics=registry)
        for i in range(20):
            cluster.register(
                Subscription.parse({"x": (i, i + 2)}), i)
        cluster.warm()
        cluster.match(Event({"x": 5}))
        snapshot = registry.snapshot()
        assert snapshot["cluster.epc_resident_pages"] > 0
        assert snapshot["cluster.slice_resident_pages.0"] == \
            snapshot["cluster.epc_resident_pages"]


class TestInterleavingProperty:

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.sampled_from(["reg", "unreg", "mig"]),
                              st.integers(0, 39)),
                    min_size=1, max_size=40),
           st.integers(0, 2 ** 16))
    def test_random_interleaving_matches_flat_engine(self, ops, seed):
        """Any interleaving of register / unregister / migrate leaves
        the cluster's match sets identical to a flat forest's."""
        subs = [Subscription.parse(
            {"x": (i % 10, i % 10 + 3), "y": (i % 7, i % 7 + 2)})
            for i in range(40)]
        events = [Event({"x": v, "y": v % 7}) for v in range(12)]
        cluster = MatcherCluster(2, spec=SPEC, assignment="epc-aware")
        reference = ContainmentForest()
        live = set()
        for op, index in ops:
            sub, client = subs[index], f"c{index}"
            if op == "reg" and index not in live:
                cluster.register(sub, client)
                reference.insert(sub, client)
                live.add(index)
            elif op == "unreg" and index in live:
                assert cluster.unregister(sub, client)
                reference.remove_subscriber(sub, client)
                live.discard(index)
            elif op == "mig" and live:
                source = index % cluster.n_slices
                if cluster.table.members(source) \
                        and source not in cluster._staged_by_source:
                    cluster.migrate(source, fraction=0.5)
        assert cluster.n_subscriptions == len(live)
        for event in events:
            assert cluster.match(event).subscribers == \
                reference.match(event)
