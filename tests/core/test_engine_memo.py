"""In-enclave match memo: churn safety, batching, recovery interplay.

The enclave library accepts ``memo_capacity`` through ``load_enclave``
kwargs. These tests drive it through real ecalls: a memoised answer
must never outlive the registration state that produced it — not
across register/unregister churn, and not across a seal/restore
restart (the restored engine starts with a *cold* but consistent
memo).
"""

import pytest

from repro.core.engine import PROVISION_AAD, ScbrEnclaveLibrary
from repro.core.keys import ProviderKeyChain
from repro.core.messages import (decode_public_key, encode_header,
                                 encode_public_key, encode_subscription,
                                 hybrid_encrypt)
from repro.crypto.encoding import pack_fields
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.matching.events import Event
from repro.matching.subscriptions import Subscription
from repro.sgx.platform import SgxPlatform
from repro.sgx.sdk import load_enclave


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


@pytest.fixture()
def setup(vendor_key):
    platform = SgxPlatform(attestation_key_bits=768)
    enclave = load_enclave(platform, ScbrEnclaveLibrary, vendor_key,
                           rsa_bits=768, memo_capacity=32)
    keys = ProviderKeyChain(rsa_bits=768)
    _report, pubkey_blob = enclave.ecall("attestation_report",
                                         b"\x00" * 32)
    enclave_pk = decode_public_key(pubkey_blob)
    payload = pack_fields([keys.sk,
                           encode_public_key(keys.public_key)])
    blob = hybrid_encrypt(enclave_pk, payload, aad=PROVISION_AAD)
    assert enclave.ecall("provision", blob)
    return platform, enclave, keys


def _sub_envelope(keys, spec, client):
    sub = Subscription.parse(spec)
    envelope = keys.channel().protect(encode_subscription(sub),
                                      aad=client.encode())
    return envelope, keys.rsa.sign(envelope)


def register(enclave, keys, spec, client):
    envelope, signature = _sub_envelope(keys, spec, client)
    return enclave.ecall("register_subscription", envelope, signature)


def unregister(enclave, keys, spec, client):
    envelope, signature = _sub_envelope(keys, spec, client)
    return enclave.ecall("unregister_subscription", envelope,
                         signature)


def publish(enclave, keys, header):
    envelope = keys.channel().protect(encode_header(Event(header)))
    return enclave.ecall("match_publication", envelope)


class TestEnclaveMemoChurn:

    def test_repeat_publication_hits_memo(self, setup):
        _platform, enclave, keys = setup
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        assert publish(enclave, keys, {"symbol": "HAL"}) == ["alice"]
        assert publish(enclave, keys, {"symbol": "HAL"}) == ["alice"]
        snapshot = enclave.ecall("engine_metrics")
        assert snapshot["engine.memo_hits_total"] == 1
        assert snapshot["engine.memo_entries"] == 1

    def test_unregister_never_serves_stale(self, setup):
        _platform, enclave, keys = setup
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        assert publish(enclave, keys, {"symbol": "HAL"}) == ["alice"]
        assert unregister(enclave, keys, {"symbol": "HAL"}, "alice")
        assert publish(enclave, keys, {"symbol": "HAL"}) == []
        register(enclave, keys, {"symbol": "HAL"}, "bob")
        assert publish(enclave, keys, {"symbol": "HAL"}) == ["bob"]

    def test_batched_equals_sequential_with_memo(self, setup):
        """Two-phase batching (decrypt all, then match all) must agree
        with one-at-a-time matching, memo on."""
        _platform, enclave, keys = setup
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        register(enclave, keys, {"symbol": "IBM",
                                 "price": ("<", 50)}, "bob")
        headers = [{"symbol": "HAL"}, {"symbol": "IBM", "price": 40.0},
                   {"symbol": "HAL"},  # repeat: memoised by then
                   {"symbol": "XOM"}]
        envelopes = [keys.channel().protect(encode_header(Event(h)))
                     for h in headers]
        batched = enclave.ecall("match_publications", envelopes)
        singles = [enclave.ecall("match_publication", e)
                   for e in envelopes]
        assert batched == singles == [["alice"], ["bob"], ["alice"], []]


class TestEnclaveMemoRecovery:

    def test_restore_starts_cold_and_consistent(self, setup,
                                                vendor_key):
        platform, enclave, keys = setup
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        assert publish(enclave, keys, {"symbol": "HAL"}) == ["alice"]
        sealed, counter_id = enclave.ecall("seal_state")
        enclave.destroy()

        fresh = load_enclave(platform, ScbrEnclaveLibrary, vendor_key,
                             rsa_bits=768, memo_capacity=32)
        assert fresh.ecall("restore_state", sealed, counter_id) == 1
        # Cold memo: the first publication after restore traverses the
        # rebuilt index (no hit), and must agree with the pre-crash
        # answer; subsequent repeats may hit again.
        hits_before = fresh.ecall("engine_metrics")[
            "engine.memo_hits_total"]
        assert publish(fresh, keys, {"symbol": "HAL"}) == ["alice"]
        snapshot = fresh.ecall("engine_metrics")
        assert snapshot["engine.memo_hits_total"] == hits_before
        assert publish(fresh, keys, {"symbol": "HAL"}) == ["alice"]
        assert fresh.ecall("engine_metrics")[
            "engine.memo_hits_total"] == hits_before + 1

    def test_restore_invalidates_pre_restore_entries(self, setup):
        """Entries memoised against the pre-restore index must not be
        served once the replay rebuilds a different index."""
        _platform, enclave, keys = setup
        register(enclave, keys, {"symbol": "HAL"}, "alice")
        sealed, counter_id = enclave.ecall("seal_state")
        # Diverge from the sealed snapshot, then memoise the divergent
        # answer: HAL now matches nobody.
        assert unregister(enclave, keys, {"symbol": "HAL"}, "alice")
        assert publish(enclave, keys, {"symbol": "HAL"}) == []
        assert publish(enclave, keys, {"symbol": "HAL"}) == []  # hit
        # Restoring the snapshot brings alice back; the memoised empty
        # set is stale and must not be served.
        assert enclave.ecall("restore_state", sealed, counter_id) == 1
        assert publish(enclave, keys, {"symbol": "HAL"}) == ["alice"]
