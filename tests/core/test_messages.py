"""Wire-format tests: headers, subscriptions, envelopes, hybrid RSA."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import (SecureChannel, decode_header,
                                 decode_public_key, decode_subscription,
                                 encode_header, encode_public_key,
                                 encode_subscription, from_wire,
                                 hybrid_decrypt, hybrid_encrypt, to_wire)
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.errors import AuthenticationError, CryptoError, RoutingError
from repro.matching.events import Event
from repro.matching.predicates import Op, Predicate
from repro.matching.subscriptions import Subscription


@pytest.fixture(scope="module")
def rsa_key():
    return _generate_keypair_unchecked(768, 65537)


class TestHeaderCodec:

    def test_roundtrip(self):
        event = Event({"symbol": "HAL", "price": 48.25, "volume": 1000})
        decoded = decode_header(encode_header(event))
        assert decoded.header == event.header

    def test_type_preservation(self):
        event = Event({"i": 42, "f": 42.0, "s": "42"})
        decoded = decode_header(encode_header(event))
        assert isinstance(decoded["i"], int)
        assert isinstance(decoded["f"], float)
        assert isinstance(decoded["s"], str)

    def test_canonical_encoding_order_independent(self):
        a = encode_header(Event({"a": 1, "b": 2}))
        b = encode_header(Event({"b": 2, "a": 1}))
        assert a == b

    def test_negative_and_unicode(self):
        event = Event({"delta": -12, "name": "héllo™"})
        assert decode_header(encode_header(event)).header == event.header

    def test_malformed_rejected(self):
        with pytest.raises(Exception):
            decode_header(b"garbage")

    @given(st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        st.one_of(st.integers(-10**9, 10**9),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=12)),
        min_size=1, max_size=6))
    def test_roundtrip_property(self, header):
        event = Event(header)
        assert decode_header(encode_header(event)).header == header


class TestSubscriptionCodec:

    def _roundtrip(self, sub):
        return decode_subscription(encode_subscription(sub))

    def test_simple(self):
        sub = Subscription.parse({"symbol": "HAL", "price": ("<", 50)})
        assert self._roundtrip(sub).key() == sub.key()

    def test_all_operator_kinds(self):
        sub = Subscription.of(
            Predicate("a", Op.EQ, "pin"),
            Predicate("b", Op.RANGE, (1.5, 2.5)),
            Predicate("c", Op.GT, 0),
            Predicate("c", Op.LE, 10),
            Predicate("d", Op.NE, 7),
            Predicate("e", Op.EXISTS),
        )
        assert self._roundtrip(sub).key() == sub.key()

    def test_string_exclusions(self):
        sub = Subscription.of(Predicate("s", Op.NE, "bad"),
                              Predicate("s", Op.NE, "worse"))
        assert self._roundtrip(sub).key() == sub.key()

    def test_open_bounds_preserved(self):
        sub = Subscription.of(Predicate("x", Op.GT, 1),
                              Predicate("x", Op.LT, 2))
        decoded = self._roundtrip(sub)
        constraint = dict(decoded.items)["x"]
        assert constraint.lo_open and constraint.hi_open

    def test_semantics_preserved(self):
        sub = Subscription.parse({"symbol": "HAL", "price": (10, 20)})
        decoded = self._roundtrip(sub)
        for price, expected in ((15.0, True), (25.0, False)):
            event = Event({"symbol": "HAL", "price": price})
            assert decoded.matches(event) is expected


class TestSecureChannel:

    def test_roundtrip_with_aad(self):
        channel = SecureChannel(b"k" * 16)
        blob = channel.protect(b"payload", aad=b"client-7")
        plaintext, aad = channel.open(blob)
        assert plaintext == b"payload" and aad == b"client-7"

    def test_tampered_ciphertext_rejected(self):
        channel = SecureChannel(b"k" * 16)
        blob = bytearray(channel.protect(b"payload"))
        blob[-10] ^= 1
        with pytest.raises(AuthenticationError):
            channel.open(bytes(blob))

    def test_aad_is_authenticated(self):
        channel = SecureChannel(b"k" * 16)
        blob = channel.protect(b"payload", aad=b"alice")
        # Splice in a different aad by re-packing the fields.
        from repro.crypto.encoding import pack_fields, unpack_fields
        nonce, ciphertext, tag, _aad = unpack_fields(blob)
        forged = pack_fields([nonce, ciphertext, tag, b"mallory"])
        with pytest.raises(AuthenticationError):
            channel.open(forged)

    def test_wrong_key_rejected(self):
        blob = SecureChannel(b"k" * 16).protect(b"payload")
        with pytest.raises(AuthenticationError):
            SecureChannel(b"x" * 16).open(blob)

    def test_nonces_fresh(self):
        channel = SecureChannel(b"k" * 16)
        assert channel.protect(b"same") != channel.protect(b"same")

    def test_bad_key_size(self):
        with pytest.raises(CryptoError):
            SecureChannel(b"short")

    @given(st.binary(max_size=300), st.binary(max_size=40))
    def test_roundtrip_property(self, payload, aad):
        channel = SecureChannel(b"k" * 16)
        plaintext, got_aad = channel.open(channel.protect(payload, aad))
        assert plaintext == payload and got_aad == aad


class TestHybrid:

    def test_roundtrip(self, rsa_key):
        blob = hybrid_encrypt(rsa_key.public_key, b"x" * 500,
                              aad=b"ctx")
        plaintext, aad = hybrid_decrypt(rsa_key, blob)
        assert plaintext == b"x" * 500 and aad == b"ctx"

    def test_large_payload_beyond_rsa_block(self, rsa_key):
        big = b"y" * 10_000
        assert big == hybrid_decrypt(
            rsa_key, hybrid_encrypt(rsa_key.public_key, big))[0]

    def test_wrong_key_rejected(self, rsa_key):
        other = _generate_keypair_unchecked(768, 65537)
        blob = hybrid_encrypt(rsa_key.public_key, b"secret")
        with pytest.raises((CryptoError, AuthenticationError)):
            hybrid_decrypt(other, blob)

    def test_malformed_envelope(self, rsa_key):
        with pytest.raises(CryptoError):
            hybrid_decrypt(rsa_key, b"\x00\x01" + b"junk" * 4)


class TestPublicKeyCodec:

    def test_roundtrip(self, rsa_key):
        decoded = decode_public_key(
            encode_public_key(rsa_key.public_key))
        assert decoded == rsa_key.public_key

    def test_malformed(self):
        with pytest.raises(Exception):
            decode_public_key(b"junk")


class TestWireFraming:

    def test_roundtrip(self):
        frame = to_wire("PUB", b"\x00\x01binary\xff")
        assert from_wire(frame) == ("PUB", b"\x00\x01binary\xff")

    def test_malformed_frames(self):
        with pytest.raises(RoutingError):
            from_wire(b"no-separator")
        with pytest.raises(Exception):
            from_wire(b"TYPE:###not-base64###")
        with pytest.raises(RoutingError):
            from_wire(b"\xff\xfe")


class TestTamperResistanceFuzz:
    """Randomised tampering must never produce a valid envelope."""

    @given(st.binary(min_size=1, max_size=120),
           st.data())
    def test_any_single_byte_flip_is_rejected(self, payload, data):
        from repro.errors import AuthenticationError, CryptoError
        channel = SecureChannel(b"k" * 16)
        blob = bytearray(channel.protect(payload, aad=b"ctx"))
        position = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[position] ^= 1 << bit
        try:
            plaintext, aad = channel.open(bytes(blob))
        except (AuthenticationError, CryptoError):
            return  # rejected: good
        # The only acceptable "success" is a flip inside the packing
        # metadata that still reproduces the identical envelope --
        # impossible for a single-bit flip, so reaching here with the
        # original content means the MAC failed at its job.
        raise AssertionError("tampered envelope accepted")


class TestSubscriptionCodecFuzz:
    """Hypothesis-random subscriptions roundtrip exactly."""

    values = st.floats(min_value=-1000, max_value=1000,
                       allow_nan=False)
    symbols = st.sampled_from(["HAL", "IBM", "GE", "XOM"])

    @st.composite
    def random_subscription(draw):
        predicates = []
        for attr in draw(st.sets(st.sampled_from("abcd"), min_size=1,
                                 max_size=3)):
            kind = draw(st.sampled_from(["range", "eq_str", "ne",
                                         "open"]))
            if kind == "range":
                lo = draw(TestSubscriptionCodecFuzz.values)
                hi = draw(TestSubscriptionCodecFuzz.values)
                if lo > hi:
                    lo, hi = hi, lo
                predicates.append(Predicate(attr, Op.RANGE, (lo, hi)))
            elif kind == "eq_str":
                predicates.append(Predicate(
                    attr, Op.EQ,
                    draw(TestSubscriptionCodecFuzz.symbols)))
            elif kind == "ne":
                predicates.append(Predicate(
                    attr, Op.NE,
                    draw(st.integers(-100, 100))))
            else:
                predicates.append(Predicate(
                    attr, Op.GT, draw(TestSubscriptionCodecFuzz.values)))
        return Subscription(predicates)

    @settings(max_examples=80, deadline=None)
    @given(random_subscription())
    def test_wire_roundtrip_is_exact(self, subscription):
        decoded = decode_subscription(encode_subscription(subscription))
        assert decoded.key() == subscription.key()

    @settings(max_examples=40, deadline=None)
    @given(random_subscription(),
           st.dictionaries(st.sampled_from("abcd"),
                           st.one_of(values, symbols),
                           min_size=1, max_size=4))
    def test_wire_roundtrip_preserves_matching(self, subscription,
                                               header):
        decoded = decode_subscription(encode_subscription(subscription))
        event = Event(header)
        assert decoded.matches(event) == subscription.matches(event)
