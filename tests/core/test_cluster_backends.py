"""Serial vs process cluster backends must be indistinguishable.

The process backend changes *where* slices execute, never *what* they
compute: for the same registration sequence and event stream, both
backends must produce identical matched-client sets and identical
simulated latencies (the workers run the same deterministic platform
model in the same per-slice operation order). These tests drive both
backends with workload-drawn data across seeds and check exact
equality, plus the process-specific lifecycle paths (recovery,
shutdown, context manager).
"""

import pytest

from repro.core.cluster import MatcherCluster
from repro.errors import RoutingError
from repro.matching.events import Event
from repro.matching.subscriptions import Subscription
from repro.sgx.cpu import scaled_spec
from repro.workloads.datasets import build_dataset

SPEC = scaled_spec(llc_bytes=256 * 1024)


def _paired_clusters(n_slices, assignment="round-robin"):
    serial = MatcherCluster(n_slices, spec=SPEC, assignment=assignment)
    process = MatcherCluster(n_slices, spec=SPEC, assignment=assignment,
                             backend="process")
    return serial, process


def _assert_equivalent(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert a.subscribers == b.subscribers
        assert a.slice_latencies_us == b.slice_latencies_us
        assert a.latency_us == b.latency_us


class TestBackendEquivalence:

    @pytest.mark.parametrize("workload,seed", [
        ("e80a1", 2016), ("e80a1", 99), ("e100a1zz100", 2016),
        ("e80a2", 7)])
    def test_workload_equivalence(self, workload, seed):
        """Property: same seed -> identical sets and latencies."""
        dataset = build_dataset(workload, 300, 60, seed=seed)
        serial, process = _paired_clusters(3)
        try:
            for index, subscription in enumerate(dataset.subscriptions):
                assert serial.register(subscription, f"c{index}") == \
                    process.register(subscription, f"c{index}")
            serial.warm()
            process.warm()
            _assert_equivalent(
                serial.match_batch(dataset.publications),
                process.match_batch(dataset.publications))
        finally:
            process.close()

    def test_interleaved_register_and_match(self):
        """Buffered registrations must not reorder around matches."""
        serial, process = _paired_clusters(2)
        try:
            event = Event({"symbol": "HAL", "price": 42.0})
            for wave in range(3):
                for i in range(5):
                    sub = Subscription.parse(
                        {"symbol": "HAL",
                         "price": ("<", 40.0 + 5 * wave + i)})
                    client = f"w{wave}-c{i}"
                    serial.register(sub, client)
                    process.register(sub, client)
                _assert_equivalent([serial.match(event)],
                                   [process.match(event)])
        finally:
            process.close()

    def test_symbol_hash_assignment_matches_serial(self):
        dataset = build_dataset("e100a1", 200, 30)
        serial, process = _paired_clusters(4, assignment="symbol-hash")
        try:
            for index, subscription in enumerate(dataset.subscriptions):
                serial.register(subscription, index)
                process.register(subscription, index)
            assert serial.slice_sizes() == process.slice_sizes()
            assert serial.slice_index_bytes() == \
                process.slice_index_bytes()
            _assert_equivalent(
                serial.match_batch(dataset.publications),
                process.match_batch(dataset.publications))
        finally:
            process.close()


class TestColumnarSlices:
    """The columnar matcher backend composes with both execution
    backends: serial-columnar, process-columnar and serial-forest must
    all produce identical match sets (and the two columnar variants
    identical latencies) for the same registrations and events."""

    @pytest.mark.parametrize("workload,seed", [("e80a1", 2016),
                                               ("e80a2", 7)])
    def test_columnar_equivalence_across_backends(self, workload, seed):
        dataset = build_dataset(workload, 200, 40, seed=seed)
        forest = MatcherCluster(3, spec=SPEC)
        serial = MatcherCluster(3, spec=SPEC,
                                matcher_backend="columnar")
        process = MatcherCluster(3, spec=SPEC, backend="process",
                                 matcher_backend="columnar")
        try:
            for index, subscription in enumerate(dataset.subscriptions):
                forest.register(subscription, f"c{index}")
                serial.register(subscription, f"c{index}")
                process.register(subscription, f"c{index}")
            serial_results = serial.match_batch(dataset.publications)
            _assert_equivalent(serial_results,
                               process.match_batch(dataset.publications))
            for a, b in zip(forest.match_batch(dataset.publications),
                            serial_results):
                assert a.subscribers == b.subscribers
        finally:
            process.close()

    def test_columnar_recover_slice_replays_journal(self):
        dataset = build_dataset("e80a1", 120, 20)
        cluster = MatcherCluster(3, spec=SPEC,
                                 matcher_backend="columnar")
        for index, subscription in enumerate(dataset.subscriptions):
            cluster.register(subscription, index)
        baseline = [r.subscribers
                    for r in cluster.match_batch(dataset.publications)]
        assert cluster.recover_slice(1) == cluster.slice_sizes()[1]
        after = [r.subscribers
                 for r in cluster.match_batch(dataset.publications)]
        assert after == baseline

    def test_unknown_matcher_backend_rejected(self):
        from repro.errors import MatchingError
        with pytest.raises(MatchingError):
            MatcherCluster(2, spec=SPEC, matcher_backend="simd")


class TestProcessLifecycle:

    def test_unknown_backend_rejected(self):
        with pytest.raises(RoutingError):
            MatcherCluster(2, spec=SPEC, backend="threads")

    def test_recover_slice_replays_journal(self):
        dataset = build_dataset("e80a1", 120, 20)
        serial, process = _paired_clusters(3)
        try:
            for index, subscription in enumerate(dataset.subscriptions):
                serial.register(subscription, index)
                process.register(subscription, index)
            sizes_before = process.slice_sizes()
            replayed = process.recover_slice(1)
            assert replayed == sizes_before[1]
            assert process.slices_recovered == 1
            assert process.slice_sizes() == sizes_before
            # Match sets still agree with serial; the recovered slice's
            # platform is fresh, so only sets (not latencies) compare.
            for event in dataset.publications:
                assert process.match(event).subscribers == \
                    serial.match(event).subscribers
        finally:
            process.close()

    def test_recover_slice_covers_buffered_registrations(self):
        """Registrations still buffered for a dead slice come back via
        the journal replay."""
        process = MatcherCluster(2, spec=SPEC, backend="process")
        try:
            for i in range(6):
                process.register(
                    Subscription.parse({"k": ("<", float(i + 1))}),
                    f"c{i}")
            # Nothing flushed yet: kill slice 0 while its batch is
            # still parent-side.
            replayed = process.recover_slice(0)
            assert replayed == 3  # round-robin gave it half
            matched = process.match(Event({"k": 0.5})).subscribers
            assert matched == {f"c{i}" for i in range(6)}
        finally:
            process.close()

    def test_close_is_idempotent_and_context_manager_closes(self):
        with MatcherCluster(2, spec=SPEC, backend="process") as cluster:
            cluster.register(Subscription.parse({"x": 1}), "alice")
            assert cluster.match(
                Event({"x": 1})).subscribers == {"alice"}
        cluster.close()  # second close after __exit__: no-op

    def test_match_after_close_raises(self):
        cluster = MatcherCluster(2, spec=SPEC, backend="process")
        cluster.register(Subscription.parse({"x": 1}), "alice")
        cluster.match(Event({"x": 1}))  # flush + one round-trip
        cluster.close()
        with pytest.raises(RoutingError):
            cluster.match(Event({"x": 1}))

    def test_empty_batch(self):
        with MatcherCluster(2, spec=SPEC, backend="process") as cluster:
            assert cluster.match_batch([]) == []


class TestWorkerTeardownIdempotency:
    """Regression: a second Connection.close() raises OSError, so any
    stop/kill/close ordering that reached the pipe twice blew up a
    teardown path that promises to be a no-op."""

    def test_stop_after_kill_then_close(self):
        process = MatcherCluster(2, spec=SPEC, backend="process")
        process.register(Subscription.parse({"x": 1}), "alice")
        process.match(Event({"x": 1}))  # flush so workers are live
        worker = process._workers[0]
        worker.kill()
        worker.stop()   # dead process, closed pipe: must not raise
        worker.kill()   # and the other order too
        process.close()

    def test_double_stop_and_double_kill(self):
        process = MatcherCluster(2, spec=SPEC, backend="process")
        try:
            worker = process._workers[1]
            worker.stop()
            worker.stop()
            worker.kill()
        finally:
            process.close()

    def test_close_after_worker_process_died(self):
        """A worker whose process is already gone (crash, OOM kill)
        must not wedge cluster teardown."""
        process = MatcherCluster(2, spec=SPEC, backend="process")
        process.register(Subscription.parse({"x": 1}), "alice")
        process.match(Event({"x": 1}))
        victim = process._workers[0]._process
        victim.terminate()
        victim.join(5.0)
        process.close()
        process.close()  # and closing a closed cluster stays a no-op
