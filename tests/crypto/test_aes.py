"""AES block cipher tests against FIPS-197 / NIST vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, xor_bytes
from repro.errors import CryptoError


class TestFips197Vectors:
    """Appendix C known-answer tests (all three key sizes)."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128_encrypt(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = "69c4e0d86a7b0430d8cdb78070b4c55a"
        assert AES(key).encrypt_block(self.PLAINTEXT).hex() == expected

    def test_aes192_encrypt(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = "dda97ca4864cdfe06eaf70a0ec0d7191"
        assert AES(key).encrypt_block(self.PLAINTEXT).hex() == expected

    def test_aes256_encrypt(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f"
                            "101112131415161718191a1b1c1d1e1f")
        expected = "8ea2b7ca516745bfeafc49904b496089"
        assert AES(key).encrypt_block(self.PLAINTEXT).hex() == expected

    def test_aes128_decrypt(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).decrypt_block(ciphertext) == self.PLAINTEXT

    def test_sp800_38a_vector(self):
        """First ECB block of the SP 800-38A AES-128 test."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = "3ad77bb40d7a3660a89ecaf32466ef97"
        assert AES(key).encrypt_block(plaintext).hex() == expected


class TestRoundTrip:

    @given(st.binary(min_size=16, max_size=16),
           st.sampled_from([16, 24, 32]))
    def test_decrypt_inverts_encrypt(self, block, key_len):
        key = bytes(range(key_len))
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    def test_encryption_changes_block(self, block):
        cipher = AES(bytes(16))
        assert cipher.encrypt_block(block) != block

    def test_distinct_keys_distinct_ciphertexts(self):
        block = bytes(16)
        a = AES(b"A" * 16).encrypt_block(block)
        b = AES(b"B" * 16).encrypt_block(block)
        assert a != b

    def test_rounds_by_key_size(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14


class TestErrors:

    @pytest.mark.parametrize("key_len", [0, 8, 15, 17, 33, 64])
    def test_bad_key_length(self, key_len):
        with pytest.raises(CryptoError):
            AES(bytes(key_len))

    @pytest.mark.parametrize("block_len", [0, 15, 17, 32])
    def test_bad_block_length(self, block_len):
        cipher = AES(bytes(16))
        with pytest.raises(CryptoError):
            cipher.encrypt_block(bytes(block_len))
        with pytest.raises(CryptoError):
            cipher.decrypt_block(bytes(block_len))


class TestXorBytes:

    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_length_mismatch(self):
        with pytest.raises(CryptoError):
            xor_bytes(b"ab", b"abc")

    @given(st.binary(min_size=0, max_size=64))
    def test_self_inverse(self, data):
        mask = bytes(len(data))
        assert xor_bytes(data, mask) == data
