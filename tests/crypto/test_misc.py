"""Tests for HKDF (RFC 5869 vectors), DRBG, primes and encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.encoding import (b64decode, b64encode, pack_fields,
                                   unpack_fields)
from repro.crypto.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.primes import SMALL_PRIMES, generate_prime, \
    is_probable_prime
from repro.errors import CryptoError, NetworkError


class TestHkdfRfc5869:
    """RFC 5869 Appendix A, test case 1 (SHA-256)."""

    IKM = bytes.fromhex("0b" * 22)
    SALT = bytes.fromhex("000102030405060708090a0b0c")
    INFO = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")

    def test_extract(self):
        prk = hkdf_extract(self.SALT, self.IKM)
        assert prk.hex() == ("077709362c2e32df0ddc3f0dc47bba63"
                             "90b6c73bb50f9c3122ec844ad7c2b3e5")

    def test_expand(self):
        prk = hkdf_extract(self.SALT, self.IKM)
        okm = hkdf_expand(prk, self.INFO, 42)
        assert okm.hex() == ("3cb25f25faacd57a90434f64d0362f2a"
                             "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
                             "34007208d5b887185865")

    def test_one_shot(self):
        okm = hkdf(self.IKM, salt=self.SALT, info=self.INFO, length=42)
        prk = hkdf_extract(self.SALT, self.IKM)
        assert okm == hkdf_expand(prk, self.INFO, 42)

    def test_length_limit(self):
        with pytest.raises(CryptoError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_distinct_info_distinct_keys(self):
        assert hkdf(b"ikm", info=b"a") != hkdf(b"ikm", info=b"b")


class TestHmacDrbg:

    def test_deterministic(self):
        assert HmacDrbg(b"seed").generate(64) == \
            HmacDrbg(b"seed").generate(64)

    def test_seed_sensitivity(self):
        assert HmacDrbg(b"a").generate(16) != HmacDrbg(b"b").generate(16)

    def test_stream_continuity(self):
        drbg = HmacDrbg(b"seed")
        first, second = drbg.generate(16), drbg.generate(16)
        assert first != second

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    def test_randint_bounds(self, a, b):
        lower, upper = min(a, b), max(a, b)
        drbg = HmacDrbg(b"bounds")
        for _ in range(10):
            value = drbg.randint(lower, upper)
            assert lower <= value <= upper


class TestPrimes:

    def test_small_primes_list(self):
        assert SMALL_PRIMES[:5] == [2, 3, 5, 7, 11]
        assert 1999 in SMALL_PRIMES

    @pytest.mark.parametrize("n,expected", [
        (0, False), (1, False), (2, True), (3, True), (4, False),
        (17, True), (561, False),  # Carmichael number
        (7919, True), (7917, False),
        (2 ** 61 - 1, True),  # Mersenne prime
        (2 ** 67 - 1, False),  # famous Mersenne composite
    ])
    def test_known_values(self, n, expected):
        assert is_probable_prime(n) is expected

    def test_generate_prime_bits(self):
        p = generate_prime(96)
        assert p.bit_length() == 96
        assert is_probable_prime(p)

    def test_generate_prime_condition(self):
        p = generate_prime(64, condition=lambda q: q % 4 == 3)
        assert p % 4 == 3

    def test_refuses_tiny(self):
        with pytest.raises(CryptoError):
            generate_prime(4)


class TestEncoding:

    @given(st.binary(max_size=200))
    def test_b64_roundtrip(self, data):
        assert b64decode(b64encode(data)) == data

    def test_b64_rejects_garbage(self):
        with pytest.raises(NetworkError):
            b64decode("not base64 !!!")

    @given(st.lists(st.binary(max_size=50), max_size=8))
    def test_pack_roundtrip(self, fields):
        assert unpack_fields(pack_fields(fields)) == fields

    def test_unpack_rejects_truncation(self):
        blob = pack_fields([b"hello", b"world"])
        with pytest.raises(NetworkError):
            unpack_fields(blob[:-1])

    def test_unpack_rejects_trailing_bytes(self):
        blob = pack_fields([b"hello"]) + b"x"
        with pytest.raises(NetworkError):
            unpack_fields(blob)

    def test_unpack_rejects_short_blob(self):
        with pytest.raises(NetworkError):
            unpack_fields(b"\x00")
