"""RSA-OAEP / RSA-PSS tests (small keys for speed)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rsa import (RsaPrivateKey, RsaPublicKey,
                              _generate_keypair_unchecked,
                              generate_keypair)
from repro.errors import AuthenticationError, CryptoError


@pytest.fixture(scope="module")
def keypair():
    return _generate_keypair_unchecked(768, 65537)


class TestKeyGeneration:

    def test_modulus_bit_length(self, keypair):
        assert keypair.n.bit_length() == 768

    def test_public_key_matches(self, keypair):
        assert keypair.public_key.n == keypair.n
        assert keypair.public_key.e == keypair.e

    def test_ed_inverse(self, keypair):
        message = 0x1234567890ABCDEF
        assert pow(pow(message, keypair.e, keypair.n), keypair.d,
                   keypair.n) == message

    def test_refuses_tiny_keys(self):
        with pytest.raises(CryptoError):
            generate_keypair(bits=256)


class TestOaep:

    def test_roundtrip(self, keypair):
        ciphertext = keypair.public_key.encrypt(b"secret")
        assert keypair.decrypt(ciphertext) == b"secret"

    def test_randomised(self, keypair):
        a = keypair.public_key.encrypt(b"secret")
        b = keypair.public_key.encrypt(b"secret")
        assert a != b  # fresh seed per encryption

    def test_label_binding(self, keypair):
        ciphertext = keypair.public_key.encrypt(b"secret", label=b"ctx")
        assert keypair.decrypt(ciphertext, label=b"ctx") == b"secret"
        with pytest.raises(CryptoError):
            keypair.decrypt(ciphertext, label=b"other")

    def test_empty_message(self, keypair):
        assert keypair.decrypt(keypair.public_key.encrypt(b"")) == b""

    def test_max_length(self, keypair):
        limit = keypair.public_key.max_message_length
        message = b"x" * limit
        assert keypair.decrypt(keypair.public_key.encrypt(message)) \
            == message
        with pytest.raises(CryptoError):
            keypair.public_key.encrypt(b"x" * (limit + 1))

    def test_tampered_ciphertext(self, keypair):
        ciphertext = bytearray(keypair.public_key.encrypt(b"secret"))
        ciphertext[-1] ^= 1
        with pytest.raises(CryptoError):
            keypair.decrypt(bytes(ciphertext))

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=32))
    def test_roundtrip_property(self, keypair, message):
        assert keypair.decrypt(
            keypair.public_key.encrypt(message)) == message


class TestPss:

    def test_sign_verify(self, keypair):
        signature = keypair.sign(b"message")
        keypair.public_key.verify(b"message", signature)

    def test_signature_randomised_but_both_valid(self, keypair):
        s1 = keypair.sign(b"m")
        s2 = keypair.sign(b"m")
        assert s1 != s2  # salted
        keypair.public_key.verify(b"m", s1)
        keypair.public_key.verify(b"m", s2)

    def test_wrong_message(self, keypair):
        signature = keypair.sign(b"message")
        with pytest.raises(AuthenticationError):
            keypair.public_key.verify(b"other", signature)

    def test_tampered_signature(self, keypair):
        signature = bytearray(keypair.sign(b"message"))
        signature[0] ^= 1
        with pytest.raises(AuthenticationError):
            keypair.public_key.verify(b"message", bytes(signature))

    def test_wrong_key(self, keypair):
        other = _generate_keypair_unchecked(768, 65537)
        signature = keypair.sign(b"message")
        with pytest.raises(AuthenticationError):
            other.public_key.verify(b"message", signature)

    def test_signature_length_check(self, keypair):
        with pytest.raises(AuthenticationError):
            keypair.public_key.verify(b"message", b"short")
