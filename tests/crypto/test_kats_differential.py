"""Extended KATs and old-vs-new differential fuzzing.

The optimized data plane (T-table AES, byte-sliced batch CTR, word-state
CMAC) must be byte-for-byte the same function as the pinned pre-PR
reference implementations in :mod:`repro.crypto.reference`. This module
holds the two gates:

* NIST known-answer vectors beyond the basics already in
  ``test_aes.py`` / ``test_ctr.py`` / ``test_cmac.py``: FIPS-197
  decrypt for 192/256-bit keys, SP 800-38A CTR-AES192/256 (F.5.3,
  F.5.5) and SP 800-38B CMAC examples for AES-192/256.
* A seeded differential fuzz (1000+ cases) driving the optimized and
  reference implementations through identical inputs — all key sizes,
  CTR lengths straddling the sliced-path threshold, and a counter-wrap
  case near 2^128.
"""

import random

import pytest

from repro.crypto.aes import AES, BLOCK_SIZE, _SLICE_THRESHOLD
from repro.crypto.cmac import AesCmac
from repro.crypto.ctr import AesCtr
from repro.crypto.reference import (ReferenceAES, ReferenceAesCmac,
                                    ReferenceAesCtr)

KEY_128 = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
KEY_192 = bytes.fromhex(
    "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b")
KEY_256 = bytes.fromhex("603deb1015ca71be2b73aef0857d7781"
                        "1f352c073b6108d72d9810a30914dff4")
CTR_IV = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
NIST_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710")


class TestFips197Decrypt:
    """Appendix C inverse-cipher vectors for the larger key sizes."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes192_decrypt(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617")
        ciphertext = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).decrypt_block(ciphertext) == self.PLAINTEXT

    def test_aes256_decrypt(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f"
                            "101112131415161718191a1b1c1d1e1f")
        ciphertext = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).decrypt_block(ciphertext) == self.PLAINTEXT


class TestCtrLargerKeys:
    """SP 800-38A F.5.3 (CTR-AES192) and F.5.5 (CTR-AES256)."""

    CIPHERTEXT_192 = bytes.fromhex(
        "1abc932417521ca24f2b0459fe7e6e0b"
        "090339ec0aa6faefd5ccc2c6f4ce8e94"
        "1e36b26bd1ebc670d1bd1d665620abf7"
        "4f78a7f6d29809585a97daec58c6b050")
    CIPHERTEXT_256 = bytes.fromhex(
        "601ec313775789a5b7a7f504bbf3d228"
        "f443e3ca4d62b59aca84e990cacaf5c5"
        "2b0930daa23de94ce87017ba2d84988d"
        "dfc9c58db67aada613c2dd08457941a6")

    def test_ctr_aes192_encrypt(self):
        assert AesCtr(KEY_192).process(
            CTR_IV, NIST_PLAINTEXT) == self.CIPHERTEXT_192

    def test_ctr_aes192_decrypt(self):
        assert AesCtr(KEY_192).process(
            CTR_IV, self.CIPHERTEXT_192) == NIST_PLAINTEXT

    def test_ctr_aes256_encrypt(self):
        assert AesCtr(KEY_256).process(
            CTR_IV, NIST_PLAINTEXT) == self.CIPHERTEXT_256

    def test_ctr_aes256_decrypt(self):
        assert AesCtr(KEY_256).process(
            CTR_IV, self.CIPHERTEXT_256) == NIST_PLAINTEXT


class TestCmacLargerKeys:
    """SP 800-38B CMAC examples for AES-192 and AES-256."""

    @pytest.mark.parametrize("n_bytes,expected", [
        (0, "d17ddf46adaacde531cac483de7a9367"),
        (16, "9e99a7bf31e710900662f65e617c5184"),
        (40, "8a1de5be2eb31aad089a82e6ee908b0e"),
        (64, "a1d5df0eed790f794d77589659f39a11"),
    ])
    def test_cmac_aes192(self, n_bytes, expected):
        tag = AesCmac(KEY_192).tag(NIST_PLAINTEXT[:n_bytes])
        assert tag.hex() == expected

    @pytest.mark.parametrize("n_bytes,expected", [
        (0, "028962f61b7bf89efc6b551f4667d983"),
        (16, "28a7023f452e8f82bd4bf28d8c37c35c"),
        (40, "aaf3d8f1de5640c232f5b169b9c911e6"),
        (64, "e1992190549f6ed5696a2c056c315410"),
    ])
    def test_cmac_aes256(self, n_bytes, expected):
        tag = AesCmac(KEY_256).tag(NIST_PLAINTEXT[:n_bytes])
        assert tag.hex() == expected


class TestDifferentialFuzz:
    """Old-vs-new equivalence over >=1000 seeded random cases.

    The reference classes are the pinned pre-optimization per-byte
    implementations; any divergence here means the fast path is not
    AES/CTR/CMAC any more and fails the PR's byte-exactness gate.
    """

    def test_block_cipher_differential(self):
        rng = random.Random(0xA51)
        for _case in range(450):  # x2 directions = 900 comparisons
            key = rng.randbytes(rng.choice([16, 24, 32]))
            block = rng.randbytes(BLOCK_SIZE)
            fast, slow = AES(key), ReferenceAES(key)
            ct_fast = fast.encrypt_block(block)
            assert ct_fast == slow.encrypt_block(block)
            assert fast.decrypt_block(ct_fast) == block
            assert slow.decrypt_block(ct_fast) == block

    def test_ctr_differential_both_paths(self):
        rng = random.Random(0xC72)
        # Lengths straddle the sliced-path threshold so both keystream
        # code paths (per-block word loop and byte-sliced batch) are
        # exercised against the reference.
        word_loop_max = (_SLICE_THRESHOLD - 1) * BLOCK_SIZE
        lengths = [0, 1, 15, 16, 17, word_loop_max,
                   word_loop_max + 1, _SLICE_THRESHOLD * BLOCK_SIZE,
                   1000, 4096]
        for _case in range(40):
            key = rng.randbytes(rng.choice([16, 24, 32]))
            fast, slow = AesCtr(key), ReferenceAesCtr(key)
            for n in lengths:  # 40 x 10 = 400 cases
                nonce = rng.randbytes(16)
                data = rng.randbytes(n)
                assert fast.process(nonce, data) == \
                    slow.process(nonce, data)

    def test_ctr_counter_wrap(self):
        """Keystreams that wrap the 128-bit counter past zero."""
        rng = random.Random(0x88F)
        for _case in range(20):
            key = rng.randbytes(rng.choice([16, 24, 32]))
            blocks_past = rng.randrange(1, 2 * _SLICE_THRESHOLD)
            start = ((1 << 128) - blocks_past) << 0
            nonce = start.to_bytes(16, "big")
            data = rng.randbytes(
                (blocks_past + _SLICE_THRESHOLD) * BLOCK_SIZE)
            assert AesCtr(key).process(nonce, data) == \
                ReferenceAesCtr(key).process(nonce, data)

    def test_cmac_differential(self):
        rng = random.Random(0x3AC)
        for _case in range(150):
            key = rng.randbytes(rng.choice([16, 24, 32]))
            message = rng.randbytes(rng.randrange(0, 200))
            assert AesCmac(key).tag(message) == \
                ReferenceAesCmac(key).tag(message)

    def test_sliced_keystream_matches_word_loop(self):
        """The two internal CTR paths agree block-for-block."""
        rng = random.Random(0x51C)
        for _case in range(30):
            key = rng.randbytes(rng.choice([16, 24, 32]))
            aes = AES(key)
            counter = rng.getrandbits(128)
            n_blocks = rng.randrange(_SLICE_THRESHOLD,
                                     4 * _SLICE_THRESHOLD)
            sliced = aes._ctr_keystream_sliced(counter, n_blocks)
            per_block = b"".join(
                aes.encrypt_block(
                    ((counter + i) & ((1 << 128) - 1)).to_bytes(
                        16, "big"))
                for i in range(n_blocks))
            assert sliced == per_block
