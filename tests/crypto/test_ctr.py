"""AES-CTR mode tests, including the NIST SP 800-38A vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.ctr import AesCtr, ctr_decrypt, ctr_encrypt
from repro.errors import CryptoError


class TestSp800_38aVectors:
    """NIST SP 800-38A F.5.1 CTR-AES128.Encrypt."""

    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
    PLAINTEXT = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710")
    CIPHERTEXT = bytes.fromhex(
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
        "5ae4df3edbd5d35e5b4f09020db03eab"
        "1e031dda2fbe03d1792170a0f3009cee")

    def test_encrypt(self):
        assert ctr_encrypt(self.KEY, self.COUNTER,
                           self.PLAINTEXT) == self.CIPHERTEXT

    def test_decrypt(self):
        assert ctr_decrypt(self.KEY, self.COUNTER,
                           self.CIPHERTEXT) == self.PLAINTEXT

    def test_partial_block(self):
        """CTR is a stream: prefixes encrypt identically."""
        partial = ctr_encrypt(self.KEY, self.COUNTER, self.PLAINTEXT[:7])
        assert partial == self.CIPHERTEXT[:7]


class TestProperties:

    @given(st.binary(max_size=200))
    def test_roundtrip(self, data):
        ctr = AesCtr(b"k" * 16)
        nonce = b"n" * 16
        assert ctr.process(nonce, ctr.process(nonce, data)) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_different_nonces_differ(self, data):
        ctr = AesCtr(b"k" * 16)
        a = ctr.process(b"\x00" * 16, data)
        b = ctr.process(b"\x01" * 16, data)
        assert a != b

    def test_fresh_nonce_roundtrip(self):
        ctr = AesCtr(b"k" * 16)
        blob = ctr.encrypt_with_fresh_nonce(b"hello")
        assert ctr.decrypt_with_prefixed_nonce(blob) == b"hello"
        # A second encryption uses a different nonce.
        assert ctr.encrypt_with_fresh_nonce(b"hello") != blob

    def test_counter_wraps_across_blocks(self):
        """The counter increments per block (checked via overlap)."""
        ctr = AesCtr(b"k" * 16)
        nonce = b"\xff" * 16  # wraps to zero after first block
        two_blocks = ctr.process(nonce, bytes(32))
        assert two_blocks[16:] == ctr.process(bytes(16), bytes(16))


class TestErrors:

    def test_bad_nonce_length(self):
        with pytest.raises(CryptoError):
            AesCtr(b"k" * 16).process(b"short", b"data")

    def test_truncated_prefixed_blob(self):
        with pytest.raises(CryptoError):
            AesCtr(b"k" * 16).decrypt_with_prefixed_nonce(b"tiny")
