"""Per-key cipher provider: caching semantics and bounds."""

from repro.crypto import provider
from repro.crypto.provider import (CACHE_CAPACITY, aes_for_key,
                                   clear_key_cache, cmac_for_key,
                                   ctr_for_key)


class TestKeyCache:

    def setup_method(self):
        clear_key_cache()

    def test_same_key_returns_same_object(self):
        key = b"k" * 16
        assert aes_for_key(key) is aes_for_key(key)
        assert ctr_for_key(key) is ctr_for_key(key)
        assert cmac_for_key(key) is cmac_for_key(key)

    def test_distinct_keys_distinct_objects(self):
        assert aes_for_key(b"a" * 16) is not aes_for_key(b"b" * 16)

    def test_cached_objects_compute_correctly(self):
        key = b"k" * 16
        nonce = b"n" * 16
        ctr = ctr_for_key(key)
        assert ctr.process(nonce, ctr.process(nonce, b"data")) == b"data"
        mac = cmac_for_key(key)
        mac.verify(b"msg", mac.tag(b"msg"))

    def test_capacity_bounded_lru(self):
        first_key = (0).to_bytes(16, "big")
        first = aes_for_key(first_key)
        for i in range(1, CACHE_CAPACITY + 1):
            aes_for_key(i.to_bytes(16, "big"))
        # first_key was least recently used and fell out: a fresh
        # instance is built for it.
        assert aes_for_key(first_key) is not first

    def test_lru_refresh_on_hit(self):
        first_key = (0).to_bytes(16, "big")
        first = aes_for_key(first_key)
        for i in range(1, CACHE_CAPACITY):
            aes_for_key(i.to_bytes(16, "big"))
        aes_for_key(first_key)  # refresh
        aes_for_key((CACHE_CAPACITY).to_bytes(16, "big"))  # evicts key 1
        assert aes_for_key(first_key) is first

    def test_clear(self):
        key = b"k" * 16
        before = aes_for_key(key)
        clear_key_cache()
        assert aes_for_key(key) is not before
