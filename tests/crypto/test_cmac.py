"""AES-CMAC tests against the RFC 4493 vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.cmac import AesCmac, cmac, cmac_verify
from repro.errors import AuthenticationError, CryptoError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710")


class TestRfc4493Vectors:

    def test_empty_message(self):
        assert cmac(KEY, b"").hex() == \
            "bb1d6929e95937287fa37d129b756746"

    def test_one_block(self):
        assert cmac(KEY, MSG[:16]).hex() == \
            "070a16b46b4d4144f79bdd9dd04a287c"

    def test_20_bytes(self):
        assert cmac(KEY, MSG[:20]).hex() == \
            "7d85449ea6ea19c823a7bf78837dfade"

    def test_full_64_bytes(self):
        assert cmac(KEY, MSG).hex() == \
            "51f0bebf7e3b9d92fc49741779363cfe"


class TestVerify:

    def test_roundtrip(self):
        tag = cmac(KEY, b"message")
        cmac_verify(KEY, b"message", tag)  # should not raise

    def test_tampered_message(self):
        tag = cmac(KEY, b"message")
        with pytest.raises(AuthenticationError):
            cmac_verify(KEY, b"messagX", tag)

    def test_tampered_tag(self):
        tag = bytearray(cmac(KEY, b"message"))
        tag[0] ^= 1
        with pytest.raises(AuthenticationError):
            cmac_verify(KEY, b"message", bytes(tag))

    def test_wrong_key(self):
        tag = cmac(KEY, b"message")
        with pytest.raises(AuthenticationError):
            cmac_verify(b"x" * 16, b"message", tag)

    def test_wrong_tag_length(self):
        with pytest.raises(CryptoError):
            cmac_verify(KEY, b"message", b"short")

    @given(st.binary(max_size=100))
    def test_verify_accepts_own_tags(self, message):
        mac = AesCmac(KEY)
        mac.verify(message, mac.tag(message))

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_messages_distinct_tags(self, a, b):
        if a == b:
            return
        assert cmac(KEY, a) != cmac(KEY, b)
