"""End-to-end system tests: the full Fig. 4 protocol over the bus."""

import pytest

from repro.core.engine import ScbrEnclaveLibrary
from repro.core.provider import ServiceProvider
from repro.core.publisher import Publisher
from repro.core.router import Router
from repro.core.subscriber import Client
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.errors import AttestationError, RollbackError
from repro.network.bus import MessageBus
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuilder
from repro.sgx.platform import SgxPlatform


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


@pytest.fixture()
def world(vendor_key):
    bus = MessageBus()
    platform = SgxPlatform(attestation_key_bits=768)
    ias = AttestationService(signing_key_bits=768)
    ias.register_platform(platform)
    expected = EnclaveBuilder(platform, ScbrEnclaveLibrary).measure()
    router = Router(bus, platform, vendor_key, rsa_bits=768)
    provider = ServiceProvider(bus, rsa_bits=768,
                               attestation_service=ias,
                               expected_mr_enclave=expected)
    provider.provision_router(router)
    publisher = Publisher(bus, provider.keys, provider.group)
    return bus, platform, ias, router, provider, publisher


def admit(bus, provider, client_id):
    client = Client(bus, client_id, provider.keys.public_key)
    client.process_admission(provider.admit_client(client_id))
    return client


class TestEndToEnd:

    def test_pub_sub_roundtrip(self, world):
        bus, _p, _ias, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        bob = admit(bus, provider, "bob")
        alice.subscribe("provider", {"symbol": "HAL",
                                     "price": ("<", 50.0)})
        bob.subscribe("provider", {"symbol": "IBM"})
        provider.pump("router")
        router.pump()

        publisher.publish("router", {"symbol": "HAL", "price": 48.0},
                          b"hal cheap")
        publisher.publish("router", {"symbol": "HAL", "price": 52.0},
                          b"hal pricey")
        publisher.publish("router", {"symbol": "IBM", "price": 9.0},
                          b"ibm news")
        router.pump()
        alice.pump()
        bob.pump()
        assert alice.received == [b"hal cheap"]
        assert bob.received == [b"ibm news"]
        assert router.deliveries == 2

    def test_overlapping_subscriptions(self, world):
        bus, _p, _ias, router, provider, publisher = world
        broad = admit(bus, provider, "broad")
        narrow = admit(bus, provider, "narrow")
        broad.subscribe("provider", {"price": (">", 0.0)})
        narrow.subscribe("provider", {"price": (">", 0.0),
                                      "symbol": "HAL"})
        provider.pump("router")
        router.pump()
        publisher.publish("router", {"symbol": "HAL", "price": 1.0},
                          b"both")
        publisher.publish("router", {"symbol": "IBM", "price": 1.0},
                          b"broad only")
        router.pump()
        broad.pump()
        narrow.pump()
        assert broad.received == [b"both", b"broad only"]
        assert narrow.received == [b"both"]

    def test_router_sees_only_ciphertext(self, world):
        """Privacy: header plaintext never appears in router traffic."""
        bus, _p, _ias, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "SECRETSYM"})
        provider.pump("router")
        # Capture the REG frame content before the router consumes it.
        sender, frames = bus.endpoint("router").recv()
        assert all(b"SECRETSYM" not in frame for frame in frames)
        router.handle_register(frames[0])
        publisher.publish("router", {"symbol": "SECRETSYM"},
                          b"payload")
        sender, frames = bus.endpoint("router").recv()
        assert all(b"SECRETSYM" not in frame for frame in frames)

    def test_revocation_end_to_end(self, world):
        bus, _p, _ias, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        eve = admit(bus, provider, "eve")
        alice.subscribe("provider", {"symbol": "HAL"})
        eve.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()

        for frame in provider.revoke_client("eve"):
            provider.endpoint.send("router", [frame])
        router.pump()   # processes UNREG
        alice.pump()    # receives rotated group key

        publisher.publish("router", {"symbol": "HAL"}, b"for alice")
        router.pump()
        alice.pump()
        eve.pump()
        assert alice.received == [b"for alice"]
        assert eve.received == []
        # Eve's subscription is gone from the engine too.
        assert router.stats()["subscriptions"] == 1

    def test_seal_restore_migration(self, world, vendor_key):
        bus, platform, _ias, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()

        sealed, counter_id = router.seal()
        replacement = Router(bus, platform, vendor_key,
                             name="router-2", rsa_bits=768)
        assert replacement.restore(sealed, counter_id) == 1
        publisher.publish("router-2", {"symbol": "HAL"}, b"migrated")
        replacement.pump()
        alice.pump()
        assert alice.received == [b"migrated"]

    def test_stale_seal_rejected(self, world, vendor_key):
        bus, platform, _ias, router, provider, _pub = world
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()
        stale, counter = router.seal()
        router.seal()  # newer version bumps the counter
        replacement = Router(bus, platform, vendor_key,
                             name="router-3", rsa_bits=768)
        with pytest.raises(RollbackError):
            replacement.restore(stale, counter)


class TestAttestationGates:

    def test_wrong_measurement_blocks_provisioning(self, vendor_key):
        bus = MessageBus()
        platform = SgxPlatform(attestation_key_bits=768)
        ias = AttestationService(signing_key_bits=768)
        ias.register_platform(platform)
        router = Router(bus, platform, vendor_key, rsa_bits=768)
        provider = ServiceProvider(bus, rsa_bits=768,
                                   attestation_service=ias,
                                   expected_mr_enclave=b"\x00" * 32)
        with pytest.raises(AttestationError):
            provider.provision_router(router)

    def test_unregistered_platform_blocks_provisioning(self, vendor_key):
        bus = MessageBus()
        platform = SgxPlatform(attestation_key_bits=768)
        ias = AttestationService(signing_key_bits=768)  # not registered
        router = Router(bus, platform, vendor_key, rsa_bits=768)
        provider = ServiceProvider(bus, rsa_bits=768,
                                   attestation_service=ias,
                                   expected_mr_enclave=router.mr_enclave)
        with pytest.raises(AttestationError):
            provider.provision_router(router)

    def test_no_attestation_service_configured(self, vendor_key):
        bus = MessageBus()
        platform = SgxPlatform(attestation_key_bits=768)
        router = Router(bus, platform, vendor_key, rsa_bits=768)
        provider = ServiceProvider(bus, rsa_bits=768)
        with pytest.raises(AttestationError):
            provider.provision_router(router)


class TestOfflineClients:

    def test_disconnected_client_retried_then_dead_lettered(self, world):
        """A registered subscriber whose endpoint vanished must not
        wedge the router; the delivery is retried with backoff, then
        declared dead and quarantined — never silently lost."""
        bus, _p, _ias, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        # ghost registers but never creates a bus endpoint.
        ghost = Client.__new__(Client)
        ghost.client_id = "ghost"
        provider.admit_client("ghost")
        from repro.core.messages import (encode_subscription,
                                         hybrid_encrypt)
        from repro.core.protocol import build_subscription_request
        from repro.matching.subscriptions import Subscription
        blob = encode_subscription(Subscription.parse({"symbol": "HAL"}))
        encrypted = hybrid_encrypt(provider.keys.public_key, blob,
                                   aad=b"ghost")
        provider.endpoint.send(
            "provider", [build_subscription_request("ghost", encrypted)])
        provider.pump("router")
        router.pump()
        publisher.publish("router", {"symbol": "HAL"}, b"hello")
        router.pump()
        alice.pump()
        assert alice.received == [b"hello"]
        assert router.deliveries == 1
        # The ghost's delivery is still being retried, not yet dropped.
        assert router.dropped == 0
        assert router.pending_retries == 1
        router.drain_retries()
        assert router.dropped == 1
        assert router.pending_retries == 0
        letters = list(router.dead_letters)
        assert len(letters) == 1
        assert letters[0].reason == "retries-exhausted"
        assert "ghost" in letters[0].detail

    def test_reconnecting_client_recovers_via_retry(self, world):
        """A subscriber that comes back before the schedule is
        exhausted receives the payload on a retry tick."""
        bus, _p, _ias, router, provider, publisher = world
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()
        # Simulate a vanished endpoint by registering under a name the
        # bus does not know yet, then creating it mid-retry.
        from repro.core.messages import (encode_subscription,
                                         hybrid_encrypt)
        from repro.core.protocol import build_subscription_request
        from repro.matching.subscriptions import Subscription
        blob = encode_subscription(Subscription.parse({"symbol": "HAL"}))
        encrypted = hybrid_encrypt(provider.keys.public_key, blob,
                                   aad=b"lazarus")
        provider.admit_client("lazarus")
        provider.endpoint.send(
            "provider",
            [build_subscription_request("lazarus", encrypted)])
        provider.pump("router")
        router.pump()
        publisher.publish("router", {"symbol": "HAL"}, b"wake up")
        router.pump()
        assert router.pending_retries == 1
        bus.endpoint("lazarus")  # the client reconnects
        router.drain_retries()
        assert router.dropped == 0
        assert bus.pending("lazarus") == 1
        assert router.deliveries == 2  # alice + lazarus


class TestMultiplePublishers:

    def test_sources_within_one_domain_share_sk(self, world):
        """Paper §3.2: data may come from multiple sources operating in
        the same administrative domain — all share SK and group keys."""
        bus, _p, _ias, router, provider, _publisher = world
        from repro.core.publisher import Publisher
        feed_a = Publisher(bus, provider.keys, provider.group,
                           name="feed-a")
        feed_b = Publisher(bus, provider.keys, provider.group,
                           name="feed-b")
        alice = admit(bus, provider, "alice")
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()
        feed_a.publish("router", {"symbol": "HAL", "price": 1.0},
                       b"from A")
        feed_b.publish("router", {"symbol": "HAL", "price": 2.0},
                       b"from B")
        router.pump()
        alice.pump()
        assert alice.received == [b"from A", b"from B"]
