"""Example scripts must stay runnable (deliverable b)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")


def _run(script: str, timeout: int = 240) -> str:
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:

    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "alice received 2 payloads" in out
        assert "HAL bargain" in out

    def test_robust_routing(self):
        out = _run("robust_routing.py")
        assert "conservation holds" in out
        assert "'poison-frame': 1" in out
        assert "dropped on the wire (all counted)" in out

    def test_secure_cloud_routing(self):
        out = _run("secure_cloud_routing.py")
        assert "all five properties hold." in out
        for marker in ("rejected:", "memory controller locked",
                       "stale state rejected"):
            assert marker in out

    @pytest.mark.slow
    def test_stock_ticker(self):
        out = _run("stock_ticker.py")
        assert "revoking day-trader" in out
        assert "enclave index shape" in out
