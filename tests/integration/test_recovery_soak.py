"""Recovery soak: repeated enclave deaths under lossy, live traffic.

The acceptance bar for the crash-recovery subsystem: a seeded schedule
kills the routing enclave out from under a stream of publications (and
a fault plan drops some of them on the wire), and at the end the
conservation ledger still balances exactly —

    sent = arrived + wire drops
    matched fan-out = delivered + dead-lettered

with zero lost registrations and every recovery accounted in the
metrics ``Router.stats()`` reports. ``SCBR_SOAK_TICKS`` lengthens the
run (CI uses 2000 ticks); the default keeps the tier-1 suite fast.
"""

import os

import pytest

from repro.core.engine import ScbrEnclaveLibrary
from repro.core.messages import encode_subscription, hybrid_encrypt
from repro.core.protocol import build_subscription_request
from repro.core.provider import ServiceProvider
from repro.core.publisher import Publisher
from repro.core.router import RetryPolicy, Router
from repro.core.subscriber import Client
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.matching.subscriptions import Subscription
from repro.network.bus import MessageBus
from repro.network.faults import FaultPlan, LinkFaults
from repro.obs.metrics import MetricsRegistry
from repro.recovery import CrashSchedule, RouterSupervisor
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuilder
from repro.sgx.platform import SgxPlatform


def soak_ticks() -> int:
    return int(os.environ.get("SCBR_SOAK_TICKS", "300"))


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


def test_conservation_survives_repeated_enclave_deaths(vendor_key):
    ticks = soak_ticks()
    registry = MetricsRegistry()
    plan = FaultPlan(seed=13).on_link("publisher", "router",
                                      LinkFaults(drop=0.15))
    bus = MessageBus(fault_plan=plan, metrics=registry)
    platform = SgxPlatform(attestation_key_bits=768)
    ias = AttestationService(signing_key_bits=768)
    ias.register_platform(platform)
    expected = EnclaveBuilder(platform, ScbrEnclaveLibrary).measure()
    router = Router(bus, platform, vendor_key, rsa_bits=768,
                    metrics=registry,
                    retry_policy=RetryPolicy(max_attempts=3))
    provider = ServiceProvider(bus, rsa_bits=768,
                               attestation_service=ias,
                               expected_mr_enclave=expected)
    provider.provision_router(router)
    publisher = Publisher(bus, provider.keys, provider.group)
    supervisor = RouterSupervisor(
        router, provider.provision_router,
        schedule=CrashSchedule(seed=31, mean_interval=max(
            10, ticks // 12)),
        checkpoint_interval=1)

    alice = Client(bus, "alice", provider.keys.public_key)
    alice.process_admission(provider.admit_client("alice"))
    alice.subscribe("provider", {"symbol": "HAL"})
    # ghost subscribes but never connects: its deliveries must all end
    # in the dead-letter queue, crashes or not.
    provider.admit_client("ghost")
    blob = encode_subscription(Subscription.parse({"symbol": "HAL"}))
    provider.endpoint.send("provider", [build_subscription_request(
        "ghost", hybrid_encrypt(provider.keys.public_key, blob,
                                aad=b"ghost"))])
    provider.pump("router")
    supervisor.pump()

    for index in range(ticks):
        publisher.publish("router",
                          {"symbol": "HAL", "price": float(index)},
                          b"tick %d" % index)
        supervisor.pump()
        alice.pump()

    supervisor.disarm()
    stats = supervisor.stats()      # clears a trailing corpse, if any
    router.drain_retries()
    alice.pump()
    stats = supervisor.stats()
    metrics = stats["metrics"]

    crashes = metrics["recovery.crashes_total"]
    assert crashes >= 5, f"schedule only produced {crashes} crashes"
    assert metrics["recovery.recoveries_total"] == crashes
    assert metrics["recovery.time_us.count"] == crashes
    assert metrics["recovery.rollback_rejected_total"] == 0

    # Zero lost registrations across every death.
    assert stats["subscriptions"] == 2
    assert router.enclave.ecall("verify_invariants")

    # Wire conservation: sent = arrived + injected drops.
    arrived = metrics["router.publications_total"]
    dropped = bus.dropped_messages
    assert arrived + dropped == ticks
    assert dropped > 0              # the plan actually bit

    # Routing conservation: every arrived publication matched both
    # subscribers exactly once (no duplicate delivery after resume),
    # and each matched delivery is delivered or dead-lettered.
    assert metrics["router.match_fanout.sum"] == 2 * arrived
    delivered = metrics["router.deliveries_total"]
    dead = metrics["router.deliveries_dead_lettered_total"]
    assert delivered + dead == 2 * arrived
    assert delivered == len(alice.received) == arrived
    assert dead == arrived
    assert stats["pending_retries"] == 0

    # Checkpoints were actually sealed and the covered WAL prefix
    # pruned: at interval 1 every registration batch is snapshotted,
    # so nothing is left to replay from the log itself.
    assert supervisor.checkpoints.checkpoints_taken >= 1
    assert len(supervisor.wal) == 0
