"""Fault-injection soak: under seeded chaos, no message is silently lost.

The conservation property the robust fabric guarantees: every
publication a publisher emits is exactly one of

* dropped on the wire (counted by the bus / fault plan),
* matched and delivered (router + client counters agree), or
* quarantined in the dead-letter queue with a recorded cause.

The identity is asserted from the metrics registry itself — the same
snapshot ``Router.stats()`` reports — so the accounting that operators
see is the accounting the test proves.
"""

import pytest

from repro.core.engine import ScbrEnclaveLibrary
from repro.core.messages import encode_subscription, hybrid_encrypt
from repro.core.protocol import (build_deliver,
                                 build_subscription_request)
from repro.core.provider import ServiceProvider
from repro.core.publisher import Publisher
from repro.core.router import RetryPolicy, Router
from repro.core.subscriber import Client
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.matching.subscriptions import Subscription
from repro.network.bus import MessageBus
from repro.network.faults import FaultPlan, LinkFaults
from repro.obs.metrics import MetricsRegistry
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuilder
from repro.sgx.platform import SgxPlatform


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


def build_world(vendor_key, plan):
    registry = MetricsRegistry()
    bus = MessageBus(fault_plan=plan, metrics=registry)
    platform = SgxPlatform(attestation_key_bits=768)
    ias = AttestationService(signing_key_bits=768)
    ias.register_platform(platform)
    expected = EnclaveBuilder(platform, ScbrEnclaveLibrary).measure()
    router = Router(bus, platform, vendor_key, rsa_bits=768,
                    metrics=registry,
                    retry_policy=RetryPolicy(max_attempts=3))
    provider = ServiceProvider(bus, rsa_bits=768,
                               attestation_service=ias,
                               expected_mr_enclave=expected)
    provider.provision_router(router)
    publisher = Publisher(bus, provider.keys, provider.group)
    return bus, router, provider, publisher


def subscribe_ghost(provider, client_id="ghost"):
    """Register a subscriber that never opens a bus endpoint."""
    provider.admit_client(client_id)
    blob = encode_subscription(Subscription.parse({"symbol": "HAL"}))
    provider.endpoint.send("provider", [build_subscription_request(
        client_id, hybrid_encrypt(provider.keys.public_key, blob,
                                  aad=client_id.encode()))])


class TestConservationUnderFaults:

    @pytest.mark.parametrize("seed", [3, 17, 99])
    def test_no_silent_loss_on_lossy_publisher_link(self, vendor_key,
                                                    seed):
        plan = FaultPlan(seed=seed).on_link(
            "publisher", "router",
            LinkFaults(drop=0.3, duplicate=0.1))
        bus, router, provider, publisher = build_world(vendor_key,
                                                       plan)
        alice = Client(bus, "alice", provider.keys.public_key)
        alice.process_admission(provider.admit_client("alice"))
        alice.subscribe("provider", {"symbol": "HAL"})
        subscribe_ghost(provider)
        provider.pump("router")
        router.pump()

        sent = 60
        for index in range(sent):
            publisher.publish("router",
                              {"symbol": "HAL", "price": index},
                              b"tick %d" % index)
            router.pump()
            alice.pump()
        router.drain_retries()
        alice.pump()

        stats = router.stats()
        metrics = stats["metrics"]

        # Wire conservation: everything the publisher sent either
        # reached the router or was counted as an injected drop.
        arrived = metrics["router.frames_total{kind=PUB}"]
        dropped = bus.dropped_messages
        duplicated = plan.injected["duplicate"]
        assert arrived + dropped == sent + duplicated
        assert metrics["bus.faults_injected_total{kind=drop}"] == \
            dropped
        assert dropped > 0  # the plan actually bit

        # Routing conservation: each arriving publication matched two
        # subscribers; every matched delivery was either delivered or
        # dead-lettered after an exhausted retry schedule. Nothing
        # vanished in between.
        matched = metrics["router.match_fanout.sum"]
        delivered = metrics["router.deliveries_total"]
        dead = metrics["router.deliveries_dead_lettered_total"]
        assert matched == 2 * arrived
        assert delivered + dead == matched
        assert delivered == len(alice.received) == arrived
        assert dead == arrived
        assert stats["dead_letters_by_reason"][
            "retries-exhausted"] == arrived
        assert stats["pending_retries"] == 0

        # The retry schedule really ran: 3 attempts per ghost delivery.
        assert metrics["router.delivery_attempts_total"] == \
            delivered + 3 * dead
        assert metrics["router.delivery_retries_total"] == 2 * dead

    def test_corruption_quarantined_never_delivered(self, vendor_key):
        """Corrupted ciphertext must fail authentication inside the
        enclave and land in the DLQ — never decrypt to garbage."""
        plan = FaultPlan(seed=5).on_link(
            "publisher", "router", LinkFaults(corrupt=0.4))
        bus, router, provider, publisher = build_world(vendor_key,
                                                       plan)
        alice = Client(bus, "alice", provider.keys.public_key)
        alice.process_admission(provider.admit_client("alice"))
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()

        sent = 40
        payloads = [b"tick %d" % index for index in range(sent)]
        for index, payload in enumerate(payloads):
            publisher.publish("router",
                              {"symbol": "HAL", "price": index},
                              payload)
        router.pump()
        alice.pump()
        router.drain_retries()
        alice.pump()

        corrupted = plan.injected["corrupt"]
        assert corrupted > 0
        poisoned = router.dead_letters.counts_by_reason.get(
            "poison-frame", 0)
        metrics = router.stats()["metrics"]
        # Either the header or the payload took the flipped byte; both
        # paths must surface as a quarantined frame, and intact frames
        # must all arrive verbatim.
        assert poisoned == corrupted
        assert metrics["router.frames_poisoned_total"] == corrupted
        assert len(alice.received) == sent - corrupted
        assert set(alice.received) <= set(payloads)

    def test_soak_with_hostile_frames_and_flaky_client_link(
            self, vendor_key):
        """Everything at once: lossy publisher link, flaky delivery
        link, hostile frames. Full conservation, zero silent loss."""
        plan = FaultPlan(seed=29) \
            .on_link("publisher", "router", LinkFaults(drop=0.2)) \
            .on_link("router", "alice", LinkFaults(drop=0.35))
        bus, router, provider, publisher = build_world(vendor_key,
                                                       plan)
        alice = Client(bus, "alice", provider.keys.public_key)
        alice.process_admission(provider.admit_client("alice"))
        alice.subscribe("provider", {"symbol": "HAL"})
        provider.pump("router")
        router.pump()

        mallory = bus.endpoint("mallory")
        sent = 50
        for index in range(sent):
            publisher.publish("router",
                              {"symbol": "HAL", "price": index},
                              b"tick %d" % index)
            if index % 10 == 0:
                mallory.send("router", [b"PUB:not even close"])
                mallory.send("router", [build_deliver(b"misdirect")])
            router.pump()
            alice.pump()
        router.drain_retries()
        alice.pump()

        stats = router.stats()
        metrics = stats["metrics"]
        arrived = metrics["router.publications_total"]
        delivered_frames = metrics["router.deliveries_total"]
        dead = metrics["router.deliveries_dead_lettered_total"]
        # Router-side conservation: matched == delivered + exhausted.
        assert metrics["router.match_fanout.sum"] == \
            delivered_frames + dead
        # Client-side conservation: every frame the router counted as
        # delivered either reached alice or is an accounted bus drop.
        total_drops = bus.dropped_messages
        publisher_side = sent - arrived
        client_side = total_drops - publisher_side
        assert len(alice.received) == delivered_frames - client_side
        # Hostile frames all quarantined, with causes.
        reasons = stats["dead_letters_by_reason"]
        assert reasons["poison-frame"] == 5
        assert reasons["unexpected-type"] == 5
        # The registry's own fault accounting agrees with the plan's.
        assert metrics["bus.faults_injected_total{kind=drop}"] == \
            total_drops == plan.injected["drop"]
