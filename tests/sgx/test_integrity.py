"""Integrity tree and MEE: tamper and replay detection."""

import pytest

from repro.errors import AuthenticationError, MemoryLockError
from repro.sgx.integrity_tree import IntegrityTree
from repro.sgx.mee import MemoryEncryptionEngine

KEY = b"\x01" * 16


class TestIntegrityTree:

    def test_write_verify_roundtrip(self):
        tree = IntegrityTree(KEY, n_blocks=16)
        tree.write(3, b"data")
        tree.verify(3, b"data")  # should not raise

    def test_verify_unwritten_block(self):
        tree = IntegrityTree(KEY, n_blocks=16)
        with pytest.raises(AuthenticationError):
            tree.verify(0, b"anything")

    def test_detects_modified_data(self):
        tree = IntegrityTree(KEY, n_blocks=16)
        tree.write(3, b"data")
        with pytest.raises(MemoryLockError):
            tree.verify(3, b"DATA")
        assert tree.locked

    def test_locked_tree_refuses_everything(self):
        tree = IntegrityTree(KEY, n_blocks=16)
        tree.write(3, b"data")
        with pytest.raises(MemoryLockError):
            tree.verify(3, b"bad")
        with pytest.raises(MemoryLockError):
            tree.write(4, b"other")
        with pytest.raises(MemoryLockError):
            tree.verify(3, b"data")

    def test_detects_replayed_data_and_mac(self):
        """Replay: restore an old (data, MAC, nonce) triple."""
        tree = IntegrityTree(KEY, n_blocks=16)
        tree.write(3, b"version1")
        old_mac = tree.macs[3]
        old_nonce = tree.nonces[0][3]
        tree.write(3, b"version2")
        # Attacker rolls back the leaf state...
        tree.macs[3] = old_mac
        tree.nonces[0][3] = old_nonce
        with pytest.raises(MemoryLockError):
            tree.verify(3, b"version1")

    def test_detects_full_path_replay(self):
        """Replay the entire untrusted state: root catches it."""
        import copy
        tree = IntegrityTree(KEY, n_blocks=64, arity=4)
        tree.write(7, b"v1")
        snapshot = (copy.deepcopy(tree.nonces), dict(tree.macs),
                    dict(tree.node_macs))
        tree.write(7, b"v2")
        tree.nonces, tree.macs, tree.node_macs = \
            copy.deepcopy(snapshot[0]), dict(snapshot[1]), \
            dict(snapshot[2])
        with pytest.raises(MemoryLockError):
            tree.verify(7, b"v1")

    def test_detects_deleted_node_mac(self):
        tree = IntegrityTree(KEY, n_blocks=64, arity=4)
        tree.write(7, b"v1")
        old_mac = tree.macs[7]
        old_nonce = tree.nonces[0][7]
        tree.write(7, b"v2")
        tree.macs[7] = old_mac
        tree.nonces[0][7] = old_nonce
        tree.node_macs.clear()  # attacker hides the evidence
        with pytest.raises(MemoryLockError):
            tree.verify(7, b"v1")

    def test_multiple_blocks_independent(self):
        tree = IntegrityTree(KEY, n_blocks=32, arity=4)
        for block in range(10):
            tree.write(block, b"block-%d" % block)
        for block in range(10):
            tree.verify(block, b"block-%d" % block)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            IntegrityTree(KEY, n_blocks=0)
        with pytest.raises(ValueError):
            IntegrityTree(KEY, n_blocks=4, arity=1)
        tree = IntegrityTree(KEY, n_blocks=4)
        with pytest.raises(ValueError):
            tree.write(4, b"out of range")
        with pytest.raises(ValueError):
            tree.verify(-1, b"out of range")


class TestMee:

    def test_roundtrip(self):
        mee = MemoryEncryptionEngine(KEY, n_blocks=8)
        mee.write_block(2, b"protected page contents")
        assert mee.read_block(2).rstrip(b"\x00") == \
            b"protected page contents"

    def test_dram_holds_ciphertext_only(self):
        mee = MemoryEncryptionEngine(KEY, n_blocks=8)
        mee.write_block(2, b"secret" * 10)
        assert b"secret" not in mee.dram[2]

    def test_versions_give_distinct_ciphertexts(self):
        mee = MemoryEncryptionEngine(KEY, n_blocks=8)
        mee.write_block(2, b"same data")
        first = mee.dram[2]
        mee.write_block(2, b"same data")
        assert mee.dram[2] != first  # nonce includes the version

    def test_detects_tampered_dram(self):
        mee = MemoryEncryptionEngine(KEY, n_blocks=8)
        mee.write_block(2, b"data")
        tampered = bytearray(mee.dram[2])
        tampered[0] ^= 1
        mee.dram[2] = bytes(tampered)
        with pytest.raises(MemoryLockError):
            mee.read_block(2)

    def test_detects_replayed_dram(self):
        mee = MemoryEncryptionEngine(KEY, n_blocks=8)
        mee.write_block(2, b"version1")
        stale = mee.dram[2]
        mee.write_block(2, b"version2")
        mee.dram[2] = stale
        with pytest.raises(MemoryLockError):
            mee.read_block(2)

    def test_missing_block(self):
        mee = MemoryEncryptionEngine(KEY, n_blocks=8)
        with pytest.raises(MemoryLockError):
            mee.read_block(5)

    def test_oversized_block_rejected(self):
        mee = MemoryEncryptionEngine(KEY, n_blocks=8, block_bytes=16)
        with pytest.raises(ValueError):
            mee.write_block(0, b"x" * 17)
