"""Cache model tests: LRU semantics, geometry, counters."""

import pytest
from hypothesis import given, strategies as st

from repro.sgx.cache import CacheModel


class TestGeometry:

    def test_set_count(self):
        cache = CacheModel(size_bytes=8 * 1024 * 1024, line_bytes=64,
                           associativity=16)
        assert cache.n_sets == 8192

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            CacheModel(1024, line_bytes=48, associativity=2)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheModel(3 * 64 * 2, line_bytes=64, associativity=2)

    def test_rejects_misaligned_size(self):
        with pytest.raises(ValueError):
            CacheModel(1000, line_bytes=64, associativity=2)


class TestLru:

    def _tiny(self):
        # 2 sets x 2 ways of 64-byte lines.
        return CacheModel(size_bytes=256, line_bytes=64, associativity=2)

    def test_cold_miss_then_hit(self):
        cache = self._tiny()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line

    def test_set_conflict_evicts_lru(self):
        cache = self._tiny()
        # Lines 0, 2, 4 all map to set 0 (line addr even).
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(4)   # evicts line 0
        assert cache.access_line(0) is False
        # Inserting 0 evicted line 2 (LRU); 4 should still hit.
        assert cache.access_line(4) is True

    def test_lru_refresh_on_hit(self):
        cache = self._tiny()
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(0)   # refresh 0 -> 2 is now LRU
        cache.access_line(4)   # evicts 2
        assert cache.access_line(0) is True
        assert cache.access_line(2) is False

    def test_distinct_sets_do_not_conflict(self):
        cache = self._tiny()
        cache.access_line(0)  # set 0
        cache.access_line(1)  # set 1
        cache.access_line(3)  # set 1
        assert cache.access_line(0) is True

    def test_counters(self):
        cache = self._tiny()
        cache.access_line(0)
        cache.access_line(0)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.miss_rate == 0.5
        cache.reset_counters()
        assert cache.accesses == 0
        assert cache.miss_rate == 0.0

    def test_flush(self):
        cache = self._tiny()
        cache.access_line(0)
        cache.flush()
        assert cache.access_line(0) is False

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=200))
    def test_working_set_within_capacity_always_hits_after_warmup(
            self, trace):
        """8 distinct lines fit a 2x4 cache regardless of order... only
        if they spread across sets; use a fully associative layout."""
        cache = CacheModel(size_bytes=8 * 64, line_bytes=64,
                           associativity=8)  # 1 set, 8 ways
        for line in range(8):
            cache.access_line(line)
        cache.reset_counters()
        for line in trace:
            assert cache.access_line(line) is True
