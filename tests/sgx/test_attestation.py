"""Remote attestation: reports, quotes, the simulated IAS."""

import hashlib

import pytest

from repro.crypto.rsa import _generate_keypair_unchecked
from repro.errors import AttestationError, AuthenticationError
from repro.sgx.attestation import (AttestationService, Quote,
                                   QuotingEnclave, verify_avr)
from repro.sgx.platform import SgxPlatform
from repro.sgx.sdk import EnclaveLibrary, ecall, load_enclave


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


class Attester(EnclaveLibrary):

    @ecall
    def report(self, target: bytes, data: bytes):
        return self.runtime.ereport(target, data)


def _setup(vendor_key):
    platform = SgxPlatform(attestation_key_bits=768)
    service = AttestationService(signing_key_bits=768)
    service.register_platform(platform)
    enclave = load_enclave(platform, Attester, vendor_key)
    qe = QuotingEnclave(platform)
    return platform, service, enclave, qe


class TestLocalAttestation:

    def test_report_carries_identity(self, vendor_key):
        _platform, _service, enclave, qe = _setup(vendor_key)
        report = enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                               b"hello")
        assert report.mr_enclave == enclave.mr_enclave
        assert report.mr_signer == enclave.mr_signer
        assert report.report_data == b"hello"

    def test_report_data_size_limit(self, vendor_key):
        _p, _s, enclave, _qe = _setup(vendor_key)
        with pytest.raises(Exception):
            enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                          b"x" * 65)

    def test_quote_requires_valid_report(self, vendor_key):
        _p, _s, enclave, qe = _setup(vendor_key)
        report = enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                               b"data")
        forged = type(report)(report.mr_enclave, report.mr_signer,
                              b"other-data", report.mac)
        with pytest.raises(AttestationError):
            qe.quote(forged)

    def test_report_for_other_target_rejected_by_qe(self, vendor_key):
        _p, _s, enclave, qe = _setup(vendor_key)
        report = enclave.ecall("report",
                               hashlib.sha256(b"not-qe").digest(),
                               b"data")
        with pytest.raises(AttestationError):
            qe.quote(report)


class TestRemoteAttestation:

    def test_happy_path(self, vendor_key):
        _p, service, enclave, qe = _setup(vendor_key)
        report = enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                               b"key-hash")
        avr = service.verify_quote(qe.quote(report))
        verify_avr(avr, service.report_signing_public_key,
                   expected_mr_enclave=enclave.mr_enclave)

    def test_wrong_expected_measurement(self, vendor_key):
        _p, service, enclave, qe = _setup(vendor_key)
        report = enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                               b"key-hash")
        avr = service.verify_quote(qe.quote(report))
        with pytest.raises(AttestationError):
            verify_avr(avr, service.report_signing_public_key,
                       expected_mr_enclave=b"\x00" * 32)

    def test_unregistered_platform(self, vendor_key):
        platform = SgxPlatform(attestation_key_bits=768)
        service = AttestationService(signing_key_bits=768)
        enclave = load_enclave(platform, Attester, vendor_key)
        qe = QuotingEnclave(platform)
        report = enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                               b"d")
        with pytest.raises(AttestationError):
            service.verify_quote(qe.quote(report))

    def test_revoked_platform(self, vendor_key):
        platform, service, enclave, qe = _setup(vendor_key)
        service.revoke_platform(qe.platform_id)
        report = enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                               b"d")
        avr = service.verify_quote(qe.quote(report))
        assert avr.verdict == "GROUP_REVOKED"
        with pytest.raises(AttestationError):
            verify_avr(avr, service.report_signing_public_key)

    def test_forged_quote_signature(self, vendor_key):
        _p, service, enclave, qe = _setup(vendor_key)
        report = enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                               b"d")
        quote = qe.quote(report)
        forged = Quote(quote.mr_enclave, quote.mr_signer,
                       b"tampered", quote.platform_id, quote.signature)
        with pytest.raises(AttestationError):
            service.verify_quote(forged)

    def test_forged_avr_signature(self, vendor_key):
        _p, service, enclave, qe = _setup(vendor_key)
        report = enclave.ecall("report", QuotingEnclave.MR_ENCLAVE,
                               b"d")
        avr = service.verify_quote(qe.quote(report))
        rogue_service = AttestationService(signing_key_bits=768)
        with pytest.raises(AttestationError):
            verify_avr(avr, rogue_service.report_signing_public_key)
