"""Batched memory-trace accounting: equivalence and residency edges.

The hot-path overhaul replaced per-line/per-touch accounting with
coalesced run accounting (``CacheModel.access_run``,
``EpcManager.access_run``, ``MemorySubsystem.touch_many``). These tests
pin the contract: the batched entry points must agree access-for-access
— identical hit/miss/fault/minor-fault counters and identical cycles —
with a loop of single accesses, and the residency edges (flush,
first-touch faults) must behave as before.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sgx.cache import CacheModel
from repro.sgx.cpu import scaled_spec
from repro.sgx.epc import EpcManager
from repro.sgx.memory import MemorySubsystem


def tiny_spec(epc_pages: int = 4, llc_bytes: int = 4 * 1024):
    return scaled_spec(llc_bytes=llc_bytes,
                       epc_bytes=(epc_pages + 1) * 4096,
                       epc_reserved_bytes=4096)


class TestGeometryError:

    def test_misaligned_size_message_names_the_way_size(self):
        """The error must say why the geometry cannot be built."""
        with pytest.raises(ValueError) as excinfo:
            CacheModel(size_bytes=1000, line_bytes=64, associativity=2)
        message = str(excinfo.value)
        assert "1000" in message
        assert "128" in message          # the way size it is not a multiple of
        assert "line_bytes" in message
        assert "associativity" in message

    def test_aligned_size_accepted(self):
        cache = CacheModel(size_bytes=64 * 2 * 4, line_bytes=64,
                           associativity=2)
        assert cache.n_sets == 4


class TestCacheAccessRun:

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=40),
                              st.integers(min_value=0, max_value=6)),
                    min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_run_equals_line_loop(self, runs):
        """access_run == the same lines accessed one at a time."""
        batched = CacheModel(size_bytes=8 * 64 * 2, line_bytes=64,
                             associativity=2)
        looped = CacheModel(size_bytes=8 * 64 * 2, line_bytes=64,
                            associativity=2)
        for first, extent in runs:
            last = first + extent
            hits, misses = batched.access_run(first, last)
            loop_hits = loop_misses = 0
            for line in range(first, last + 1):
                if looped.access_line(line):
                    loop_hits += 1
                else:
                    loop_misses += 1
            assert (hits, misses) == (loop_hits, loop_misses)
        assert (batched.hits, batched.misses) == \
            (looped.hits, looped.misses)
        # Residual LRU state must agree too: drain both with one more
        # sweep and compare outcomes line by line.
        for line in range(48):
            assert batched.access_line(line) == looped.access_line(line)


class TestEpcAccessRun:

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10),
                              st.integers(min_value=0, max_value=3)),
                    min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_run_equals_page_loop(self, runs):
        batched = EpcManager(tiny_spec(epc_pages=4))
        looped = EpcManager(tiny_spec(epc_pages=4))
        for first, extent in runs:
            last = first + extent
            faults = batched.access_run(first, last)
            loop_faults = sum(looped.access(page)
                              for page in range(first, last + 1))
            assert faults == loop_faults
        assert batched.faults == looped.faults
        assert batched.evictions == looped.evictions
        assert batched.loads == looped.loads
        for page in range(12):
            assert batched.is_resident(page) == looped.is_resident(page)


class TestFlushResidency:

    def test_flush_clears_lines_but_preserves_counters(self):
        memory = MemorySubsystem(tiny_spec())
        memory.touch(0, 256, enclave=True)
        hits, misses = memory.cache.hits, memory.cache.misses
        memory.cache.flush()
        assert (memory.cache.hits, memory.cache.misses) == (hits, misses)
        # Every line re-misses after the flush.
        before = memory.snapshot()
        memory.touch(0, 256, enclave=True)
        delta = memory.snapshot().delta(before)
        assert delta.llc_hits == 0
        assert delta.llc_misses == 4
        # But the EPC residency survived: no new faults.
        assert delta.epc_faults == 0

    def test_untrusted_first_touch_minor_fault_only_once(self):
        memory = MemorySubsystem(tiny_spec())
        memory.touch_many([(0, 8), (8, 8), (4096, 8)], enclave=False)
        assert memory.minor_faults == 2  # two distinct pages
        memory.touch_many([(16, 8), (4100, 8)], enclave=False)
        assert memory.minor_faults == 2  # no re-fault

    def test_enclave_first_touch_epc_fault_only_once(self):
        memory = MemorySubsystem(tiny_spec(epc_pages=8))
        memory.touch_many([(0, 64), (64, 64)], enclave=True)
        assert memory.epc.faults == 1
        memory.touch_many([(128, 64)], enclave=True)
        assert memory.epc.faults == 1


class TestTouchManyEquivalence:

    @staticmethod
    def _runs(seed, n):
        rng = random.Random(seed)
        runs = []
        for _ in range(n):
            address = rng.randrange(0, 64 * 1024)
            n_bytes = rng.randrange(1, 600)
            runs.append((address, n_bytes))
        return runs

    @pytest.mark.parametrize("enclave", [True, False])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_batch_equals_touch_loop(self, enclave, seed):
        """touch_many == loop of touch: counters AND cycles identical."""
        spec = tiny_spec(epc_pages=6, llc_bytes=8 * 1024)
        batched = MemorySubsystem(spec)
        looped = MemorySubsystem(spec)
        runs = self._runs(seed, 120)
        batched.touch_many(runs, enclave=enclave)
        for address, n_bytes in runs:
            looped.touch(address, n_bytes, enclave=enclave)
        assert batched.snapshot() == looped.snapshot()

    @given(st.lists(st.tuples(st.integers(min_value=0,
                                          max_value=32 * 1024),
                              st.integers(min_value=1, max_value=300)),
                    min_size=1, max_size=50),
           st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_touch_loop_property(self, runs, enclave):
        spec = tiny_spec(epc_pages=3, llc_bytes=4 * 1024)
        batched = MemorySubsystem(spec)
        looped = MemorySubsystem(spec)
        batched.touch_many(runs, enclave=enclave)
        for address, n_bytes in runs:
            looped.touch(address, n_bytes, enclave=enclave)
        assert batched.snapshot() == looped.snapshot()
        assert batched.epc.evictions == looped.epc.evictions

    def test_touch_range_is_touch(self):
        spec = tiny_spec()
        a = MemorySubsystem(spec)
        b = MemorySubsystem(spec)
        a.touch_range(100, 500, enclave=True)
        b.touch(100, 500, enclave=True)
        assert a.snapshot() == b.snapshot()

    def test_arena_touch_many_routes_to_owner_space(self):
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        address = arena.alloc(256)
        arena.touch_many([(address, 256)])
        assert memory.epc.faults == 1
        assert memory.minor_faults == 0
