"""EPC residency, paging and the traced memory subsystem."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EpcError
from repro.sgx.cpu import scaled_spec, SKYLAKE_I7_6700
from repro.sgx.epc import EpcManager
from repro.sgx.memory import MemoryArena, MemorySubsystem


def tiny_spec(epc_pages: int = 4, llc_bytes: int = 64 * 1024):
    """A spec with an EPC of a handful of pages."""
    return scaled_spec(llc_bytes=llc_bytes,
                       epc_bytes=(epc_pages + 1) * 4096,
                       epc_reserved_bytes=4096)


class TestEpcManager:

    def test_faults_on_first_touch(self):
        epc = EpcManager(tiny_spec())
        assert epc.access(1) is True
        assert epc.access(1) is False
        assert epc.faults == 1

    def test_eviction_at_capacity(self):
        epc = EpcManager(tiny_spec(epc_pages=2))
        epc.access(1)
        epc.access(2)
        epc.access(3)  # evicts page 1 (LRU)
        assert epc.evictions == 1
        assert not epc.is_resident(1)
        assert epc.is_resident(2) and epc.is_resident(3)

    def test_lru_refresh(self):
        epc = EpcManager(tiny_spec(epc_pages=2))
        epc.access(1)
        epc.access(2)
        epc.access(1)  # refresh
        epc.access(3)  # evicts 2, not 1
        assert epc.is_resident(1)
        assert not epc.is_resident(2)

    def test_version_bumps_on_eviction(self):
        epc = EpcManager(tiny_spec(epc_pages=1))
        epc.access(1)
        assert epc.version_of(1) == 0
        epc.access(2)  # evict 1
        assert epc.version_of(1) == 1
        epc.access(1)  # evict 2, reload 1
        epc.access(2)  # evict 1 again
        assert epc.version_of(1) == 2

    def test_thrashing_fault_rate(self):
        """Working set larger than the EPC faults on every access."""
        epc = EpcManager(tiny_spec(epc_pages=3))
        for _ in range(5):
            for page in range(4):  # 4 pages > 3 capacity, LRU worst case
                epc.access(page)
        assert epc.faults == 20

    def test_remove(self):
        epc = EpcManager(tiny_spec())
        epc.access(1)
        epc.remove(1)
        assert not epc.is_resident(1)

    def test_zero_capacity_rejected(self):
        from dataclasses import replace
        bad_spec = replace(SKYLAKE_I7_6700, epc_bytes=4096,
                           epc_reserved_bytes=4096)
        with pytest.raises(EpcError):
            EpcManager(bad_spec)

    def test_scaled_spec_guards_reservation(self):
        with pytest.raises(ValueError):
            scaled_spec(epc_bytes=4096, epc_reserved_bytes=4096)


class TestMemorySubsystem:

    def test_untrusted_minor_fault_once(self):
        memory = MemorySubsystem(tiny_spec())
        memory.touch(0, 8, enclave=False)
        memory.touch(8, 8, enclave=False)  # same page
        assert memory.minor_faults == 1

    def test_enclave_miss_costs_more(self):
        spec = tiny_spec()
        native = MemorySubsystem(spec)
        protected = MemorySubsystem(spec)
        native.touch(0, 64, enclave=False)
        protected.touch(0, 64, enclave=True)
        # Subtract the page-fault components to compare line costs.
        native_line = native.cycles - spec.costs.minor_fault_cycles
        protected_line = protected.cycles - spec.costs.epc_fault_cycles
        assert protected_line > native_line

    def test_multi_line_access(self):
        memory = MemorySubsystem(tiny_spec())
        memory.touch(0, 200, enclave=False)  # 4 cache lines
        assert memory.cache.accesses == 4

    def test_snapshot_delta(self):
        memory = MemorySubsystem(tiny_spec())
        before = memory.snapshot()
        memory.touch(0, 64, enclave=True)
        delta = memory.snapshot().delta(before)
        assert delta.epc_faults == 1
        assert delta.cycles > 0

    def test_prefault_suppresses_faults_and_charges(self):
        memory = MemorySubsystem(tiny_spec())
        memory.prefault(0, 4096 * 2, enclave=True)
        assert memory.epc.faults == 0
        assert memory.cycles == 0
        cycles_before = memory.cycles
        memory.touch(0, 8, enclave=True)
        assert memory.epc.faults == 0  # page already resident
        assert memory.cycles > cycles_before  # line cost still charged

    def test_elapsed_us_uses_clock(self):
        memory = MemorySubsystem(SKYLAKE_I7_6700)
        memory.charge(3.4e9)  # one second of cycles
        assert memory.elapsed_us() == pytest.approx(1e6)


class TestMemoryArena:

    def test_alloc_alignment(self):
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=False)
        a = arena.alloc(10)
        b = arena.alloc(10)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 10

    def test_enclave_and_untrusted_spaces_disjoint(self):
        memory = MemorySubsystem(tiny_spec())
        trusted = memory.new_arena(enclave=True)
        untrusted = memory.new_arena(enclave=False)
        assert trusted.alloc(8) != untrusted.alloc(8)
        assert trusted.base > untrusted.base

    def test_rejects_non_positive_alloc(self):
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=False)
        with pytest.raises(Exception):
            arena.alloc(0)

    def test_touch_routes_to_owner(self):
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        address = arena.alloc(64)
        arena.touch(address, 64)
        assert memory.epc.faults == 1


class TestMemoryArenaFreelist:

    def test_free_then_alloc_reuses_address(self):
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        first = arena.alloc(40)
        arena.free(first, 40)
        again = arena.alloc(40)
        assert again == first
        assert arena.reused_blocks == 1
        assert arena.freed_blocks == 1

    def test_reuse_matches_by_aligned_capacity(self):
        """40 and 50 both round up to one 64-byte line: same bucket."""
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        first = arena.alloc(40)
        arena.free(first, 40)
        assert arena.alloc(50) == first

    def test_live_bytes_tracks_churn_but_high_water_does_not(self):
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        addresses = [arena.alloc(100) for _ in range(8)]
        assert arena.live_bytes == 800
        high_water = arena.allocated_bytes
        for address in addresses:
            arena.free(address, 100)
        assert arena.live_bytes == 0
        assert arena.allocated_bytes == high_water
        # Churn of the same size class stays inside the freed blocks.
        for _ in range(20):
            address = arena.alloc(100)
            arena.free(address, 100)
        assert arena.allocated_bytes == high_water

    def test_double_free_rejected(self):
        from repro.errors import SgxError
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        address = arena.alloc(16)
        arena.free(address, 16)
        with pytest.raises(SgxError):
            arena.free(address, 16)

    def test_free_of_unknown_address_rejected(self):
        from repro.errors import SgxError
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        with pytest.raises(SgxError):
            arena.free(12345, 16)

    def test_free_with_wrong_size_rejected_and_block_stays_live(self):
        from repro.errors import SgxError
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        address = arena.alloc(16)
        with pytest.raises(SgxError):
            arena.free(address, 32)
        assert arena.live_bytes == 16
        arena.free(address, 16)  # the correct free still works
        assert arena.live_bytes == 0

    def test_lifo_reuse_prefers_most_recent(self):
        memory = MemorySubsystem(tiny_spec())
        arena = memory.new_arena(enclave=True)
        a = arena.alloc(64)
        b = arena.alloc(64)
        arena.free(a, 64)
        arena.free(b, 64)
        assert arena.alloc(64) == b
        assert arena.alloc(64) == a
