"""Performance-counter facade and SDK helper tests."""

import pytest

from repro.crypto.rsa import _generate_keypair_unchecked
from repro.errors import EnclaveError
from repro.sgx.cpu import scaled_spec
from repro.sgx.perfcounters import (PerfCounterSession, RusageSnapshot,
                                    read_counters)
from repro.sgx.platform import SgxPlatform
from repro.sgx.sdk import EnclaveLibrary, ecall, load_enclave


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


def tiny_platform():
    return SgxPlatform(spec=scaled_spec(llc_bytes=64 * 1024),
                       attestation_key_bits=768)


class TestPerfCounters:

    def test_read_counters_shape(self):
        platform = tiny_platform()
        snapshot = read_counters(platform)
        assert snapshot.llc_references == 0
        assert snapshot.minflt == 0
        assert snapshot.llc_miss_rate == 0.0

    def test_session_delta(self):
        platform = tiny_platform()
        with PerfCounterSession(platform) as session:
            platform.memory.touch(0, 64, enclave=False)
            platform.memory.touch(0, 64, enclave=False)
        assert session.delta.llc_references == 2
        assert session.delta.llc_misses == 1
        assert session.delta.minflt == 1
        assert session.delta.simulated_us > 0

    def test_session_excludes_prior_traffic(self):
        platform = tiny_platform()
        platform.memory.touch(0, 64, enclave=False)
        with PerfCounterSession(platform) as session:
            pass
        assert session.delta.llc_references == 0

    def test_epc_fault_counter(self):
        platform = tiny_platform()
        with PerfCounterSession(platform) as session:
            platform.memory.touch(1 << 40, 64, enclave=True)
        assert session.delta.epc_faults == 1

    def test_subtraction(self):
        a = RusageSnapshot(10.0, 100, 10, 1, 0)
        b = RusageSnapshot(4.0, 60, 4, 0, 0)
        delta = a - b
        assert delta.simulated_us == 6.0
        assert delta.llc_references == 40
        assert delta.llc_miss_rate == pytest.approx(6 / 40)


class TestSdkMetaclass:

    def test_ecalls_collected(self):
        class Lib(EnclaveLibrary):
            @ecall
            def a(self):
                return 1

            @ecall
            def b(self):
                return 2

            def hidden(self):
                return 3

        assert set(Lib.ECALLS) == {"a", "b"}

    def test_ecalls_inherited(self):
        class Base(EnclaveLibrary):
            @ecall
            def base_call(self):
                return 0

        class Derived(Base):
            @ecall
            def derived_call(self):
                return 1

        assert "base_call" in Derived.ECALLS
        assert "derived_call" in Derived.ECALLS

    def test_empty_library_rejected_at_load(self, vendor_key):
        class Empty(EnclaveLibrary):
            pass

        with pytest.raises(EnclaveError):
            load_enclave(tiny_platform(), Empty, vendor_key)

    def test_proxy_hides_private(self, vendor_key):
        class Lib(EnclaveLibrary):
            @ecall
            def visible(self):
                return "ok"

        from repro.sgx.sdk import make_proxy
        proxy = make_proxy(load_enclave(tiny_platform(), Lib,
                                        vendor_key))
        assert proxy.visible() == "ok"
        with pytest.raises(AttributeError):
            proxy._secret
