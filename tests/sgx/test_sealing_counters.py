"""Sealed storage, monotonic counters and rollback protection."""

import pytest

from repro.crypto.rsa import _generate_keypair_unchecked
from repro.errors import (AuthenticationError, RollbackError, SgxError)
from repro.sgx.platform import KeyPolicy, SgxPlatform
from repro.sgx.sdk import EnclaveLibrary, ecall, load_enclave
from repro.sgx.sealing import SealedBlob, seal, unseal


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


class Vault(EnclaveLibrary):
    """Trusted library that seals/unseals on request."""

    @ecall
    def seal_it(self, data: bytes, policy: str,
                counter_id: bytes = None) -> bytes:
        return seal(self.runtime, data, policy=policy,
                    counter_id=counter_id).to_bytes()

    @ecall
    def unseal_it(self, blob: bytes, counter_id: bytes = None) -> bytes:
        return unseal(self.runtime, SealedBlob.from_bytes(blob),
                      counter_id=counter_id)

    @ecall
    def new_counter(self) -> bytes:
        return self.runtime.create_monotonic_counter()

    @ecall
    def counter_value(self, counter_id: bytes) -> int:
        return self.runtime.read_monotonic_counter(counter_id)


class TestSealing:

    def test_roundtrip_same_enclave(self, vendor_key):
        platform = SgxPlatform(attestation_key_bits=768)
        vault = load_enclave(platform, Vault, vendor_key)
        blob = vault.ecall("seal_it", b"secret", KeyPolicy.MRENCLAVE)
        assert vault.ecall("unseal_it", blob) == b"secret"

    def test_roundtrip_across_instances_same_code(self, vendor_key):
        platform = SgxPlatform(attestation_key_bits=768)
        first = load_enclave(platform, Vault, vendor_key)
        blob = first.ecall("seal_it", b"secret", KeyPolicy.MRENCLAVE)
        first.destroy()
        second = load_enclave(platform, Vault, vendor_key)
        assert second.ecall("unseal_it", blob) == b"secret"

    def test_other_platform_cannot_unseal(self, vendor_key):
        p1 = SgxPlatform(attestation_key_bits=768, seed=b"\x01" * 32)
        p2 = SgxPlatform(attestation_key_bits=768, seed=b"\x02" * 32)
        blob = load_enclave(p1, Vault, vendor_key).ecall(
            "seal_it", b"secret", KeyPolicy.MRENCLAVE)
        other = load_enclave(p2, Vault, vendor_key)
        with pytest.raises(AuthenticationError):
            other.ecall("unseal_it", blob)

    def test_tampered_blob_rejected(self, vendor_key):
        platform = SgxPlatform(attestation_key_bits=768)
        vault = load_enclave(platform, Vault, vendor_key)
        blob = bytearray(vault.ecall("seal_it", b"secret",
                                     KeyPolicy.MRENCLAVE))
        blob[-1] ^= 1
        with pytest.raises(AuthenticationError):
            vault.ecall("unseal_it", bytes(blob))

    def test_truncated_blob_rejected(self, vendor_key):
        platform = SgxPlatform(attestation_key_bits=768)
        vault = load_enclave(platform, Vault, vendor_key)
        with pytest.raises(AuthenticationError):
            vault.ecall("unseal_it", b"tiny")

    def test_mrsigner_policy_survives_code_change(self, vendor_key):
        """MRSIGNER-sealed data is readable by a sibling enclave."""
        platform = SgxPlatform(attestation_key_bits=768)
        vault = load_enclave(platform, Vault, vendor_key)
        blob = SealedBlob.from_bytes(
            vault.ecall("seal_it", b"shared", KeyPolicy.MRSIGNER))
        key = platform.derive_seal_key(b"other-code" * 3 + b"xx",
                                       vault.mr_signer,
                                       KeyPolicy.MRSIGNER,
                                       key_id=b"sealing")
        from repro.crypto.ctr import AesCtr
        assert AesCtr(key).process(blob.nonce, blob.ciphertext) \
            == b"shared"


class TestRollbackProtection:

    def test_stale_blob_detected(self, vendor_key):
        platform = SgxPlatform(attestation_key_bits=768)
        vault = load_enclave(platform, Vault, vendor_key)
        counter = vault.ecall("new_counter")
        stale = vault.ecall("seal_it", b"v1", KeyPolicy.MRENCLAVE,
                            counter)
        fresh = vault.ecall("seal_it", b"v2", KeyPolicy.MRENCLAVE,
                            counter)
        assert vault.ecall("unseal_it", fresh, counter) == b"v2"
        with pytest.raises(RollbackError):
            vault.ecall("unseal_it", stale, counter)

    def test_counter_monotonicity(self, vendor_key):
        platform = SgxPlatform(attestation_key_bits=768)
        vault = load_enclave(platform, Vault, vendor_key)
        counter = vault.ecall("new_counter")
        assert vault.ecall("counter_value", counter) == 0
        vault.ecall("seal_it", b"x", KeyPolicy.MRENCLAVE, counter)
        assert vault.ecall("counter_value", counter) == 1


class TestSealedBlobWire:
    """Strict framing of the serialized blob (hostile-storage input)."""

    @staticmethod
    def blob(policy="MRENCLAVE"):
        return SealedBlob(nonce=bytes(range(16)), ciphertext=b"payload",
                          tag=b"\xAA" * 16, counter_value=7,
                          key_policy=policy)

    def test_roundtrip_both_directions(self):
        wire = self.blob().to_bytes()
        parsed = SealedBlob.from_bytes(wire)
        assert parsed == self.blob()
        assert parsed.to_bytes() == wire

    def test_empty_ciphertext_roundtrips(self):
        blob = SealedBlob(b"\x01" * 16, b"", b"\x02" * 16, 0, "MRSIGNER")
        assert SealedBlob.from_bytes(blob.to_bytes()) == blob

    def test_truncated_header_rejected(self):
        wire = self.blob().to_bytes()
        minimum = 8 + 16 + 16 + 16   # counter + policy + nonce + tag
        for cut in (0, 7, 23, minimum - 1):
            with pytest.raises(AuthenticationError):
                SealedBlob.from_bytes(wire[:cut])

    def test_empty_policy_field_rejected(self):
        wire = bytearray(self.blob().to_bytes())
        wire[8:24] = b"\x00" * 16
        with pytest.raises(AuthenticationError):
            SealedBlob.from_bytes(bytes(wire))

    def test_nonzero_policy_padding_rejected(self):
        """Bytes hidden after the NUL terminator must not parse: they
        would make two distinct wires decode to the same blob and break
        the round-trip symmetry."""
        wire = bytearray(self.blob().to_bytes())
        assert wire[23] == 0          # padding byte of "MRENCLAVE"
        wire[23] = 0x41
        with pytest.raises(AuthenticationError):
            SealedBlob.from_bytes(bytes(wire))

    def test_non_utf8_policy_rejected(self):
        wire = bytearray(self.blob().to_bytes())
        wire[8] = 0xFF
        with pytest.raises(AuthenticationError):
            SealedBlob.from_bytes(bytes(wire))

    def test_to_bytes_validates_policy(self):
        with pytest.raises(SgxError):
            self.blob(policy="").to_bytes()
        with pytest.raises(SgxError):
            self.blob(policy="x" * 17).to_bytes()
        with pytest.raises(SgxError):
            self.blob(policy="bad\x00policy").to_bytes()


class TestMonotonicCounterService:

    def test_ownership(self):
        platform = SgxPlatform(attestation_key_bits=768)
        counter = platform.counters.create(b"owner-a")
        assert platform.counters.read(counter, b"owner-a") == 0
        with pytest.raises(SgxError):
            platform.counters.read(counter, b"owner-b")
        with pytest.raises(SgxError):
            platform.counters.increment(counter, b"owner-b")

    def test_wrong_owner_cannot_destroy(self):
        platform = SgxPlatform(attestation_key_bits=768)
        counter = platform.counters.create(b"owner-a")
        with pytest.raises(SgxError):
            platform.counters.destroy(counter, b"owner-b")
        # the failed destroy must not have touched the counter
        assert platform.counters.read(counter, b"owner-a") == 0

    def test_unknown_counter(self):
        platform = SgxPlatform(attestation_key_bits=768)
        with pytest.raises(SgxError):
            platform.counters.read(b"nonexistent", b"owner")
        with pytest.raises(SgxError):
            platform.counters.increment(b"nonexistent", b"owner")

    def test_increment_and_destroy(self):
        platform = SgxPlatform(attestation_key_bits=768)
        counter = platform.counters.create(b"owner")
        assert platform.counters.increment(counter, b"owner") == 1
        assert platform.counters.increment(counter, b"owner") == 2
        platform.counters.destroy(counter, b"owner")
        with pytest.raises(SgxError):
            platform.counters.read(counter, b"owner")
