"""EPC replacement-policy tests (LRU / CLOCK / FIFO)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EpcError
from repro.sgx.cpu import scaled_spec
from repro.sgx.epc import EpcManager
from repro.sgx.paging import (ClockPolicy, FifoPolicy, LruPolicy,
                              POLICY_NAMES, make_policy)


def epc_with(policy: str, pages: int = 3) -> EpcManager:
    spec = scaled_spec(epc_bytes=(pages + 1) * 4096,
                       epc_reserved_bytes=4096, epc_policy=policy)
    return EpcManager(spec)


class TestFactory:

    def test_known_policies(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("clock"), ClockPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)

    def test_unknown_policy(self):
        with pytest.raises(EpcError):
            make_policy("magic")

    def test_names_exported(self):
        assert set(POLICY_NAMES) == {"lru", "clock", "fifo"}


class TestLru:

    def test_refresh_protects_hot_page(self):
        epc = epc_with("lru", pages=2)
        epc.access(1)
        epc.access(2)
        epc.access(1)      # refresh
        epc.access(3)      # must evict 2
        assert epc.is_resident(1) and not epc.is_resident(2)


class TestFifo:

    def test_access_does_not_refresh(self):
        epc = epc_with("fifo", pages=2)
        epc.access(1)
        epc.access(2)
        epc.access(1)      # no refresh under FIFO
        epc.access(3)      # evicts 1 (oldest load)
        assert not epc.is_resident(1) and epc.is_resident(2)


class TestClock:

    def test_second_chance(self):
        epc = epc_with("clock", pages=2)
        epc.access(1)
        epc.access(2)
        epc.access(1)      # sets 1's reference bit again
        # Faulting 3: hand clears 1's bit (second chance), evicts 2
        # (bit already cleared by the sweep order) or 1 depending on
        # hand position — assert only the CLOCK guarantee: the page
        # whose bit was set survives the *first* sweep decision.
        epc.access(3)
        assert epc.resident_pages == 2

    def test_clock_beats_fifo_on_hot_page(self):
        """A continuously re-touched page survives under CLOCK.

        Needs capacity >= 3: with only two frames the hand has no cold
        candidate with a stale bit and CLOCK degenerates to FIFO.
        """
        clock = epc_with("clock", pages=3)
        fifo = epc_with("fifo", pages=3)
        lru = epc_with("lru", pages=3)
        for epc in (clock, fifo, lru):
            epc.access(0)          # hot page
            for cold in range(1, 40):
                epc.access(0)      # keep it hot
                epc.access(cold)   # stream of cold pages
        # Hot page faults: FIFO keeps evicting it, CLOCK shields it,
        # LRU is the lower bound.
        assert clock.faults < fifo.faults
        assert lru.faults <= clock.faults

    def test_policy_removed_consistency(self):
        policy = ClockPolicy()
        policy.loaded(1)
        policy.loaded(2)
        policy.removed(1)
        assert policy.evict() == 2
        with pytest.raises(EpcError):
            policy.evict()


class TestAllPoliciesAgreeOnBasics:

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_no_eviction_below_capacity(self, name):
        epc = epc_with(name, pages=4)
        for page in range(4):
            epc.access(page)
        assert epc.evictions == 0
        assert epc.resident_pages == 4

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_capacity_never_exceeded(self, name):
        epc = epc_with(name, pages=3)
        for page in range(20):
            epc.access(page)
        assert epc.resident_pages == 3

    @pytest.mark.parametrize("name", POLICY_NAMES)
    @settings(max_examples=25, deadline=None)
    @given(trace=st.lists(st.integers(min_value=0, max_value=9),
                          min_size=1, max_size=120))
    def test_residency_invariants_under_random_traces(self, name,
                                                      trace):
        epc = epc_with(name, pages=3)
        for page in trace:
            faulted = epc.access(page)
            assert epc.is_resident(page)
            assert epc.resident_pages <= 3
            if faulted:
                assert epc.faults > 0
        assert epc.faults == epc.loads
        assert epc.faults - epc.evictions == epc.resident_pages \
            or epc.resident_pages < 3
