"""Enclave lifecycle, measurement, ecall/ocall and key derivation."""

import pytest

from repro.crypto.rsa import _generate_keypair_unchecked
from repro.errors import AuthenticationError, EnclaveError
from repro.sgx.enclave import EnclaveBuilder, Sigstruct
from repro.sgx.platform import KeyPolicy, SgxPlatform
from repro.sgx.sdk import EnclaveLibrary, ecall, load_enclave, make_proxy


@pytest.fixture(scope="module")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


@pytest.fixture()
def platform():
    return SgxPlatform(attestation_key_bits=768)


class EchoLibrary(EnclaveLibrary):
    """Minimal trusted library used across the tests."""

    @ecall
    def echo(self, data: bytes) -> bytes:
        return b"echo:" + data

    @ecall
    def derive(self, policy: str) -> bytes:
        return self.runtime.egetkey(policy)

    @ecall
    def run_ocall(self, fn) -> object:
        return self.runtime.ocall(fn, 21)

    def not_an_ecall(self):
        return "hidden"


class OtherLibrary(EnclaveLibrary):

    @ecall
    def noop(self) -> None:
        return None


class ReentrantLibrary(EnclaveLibrary):
    """Illegally re-enters its own enclave from inside."""

    @ecall
    def reenter(self):
        return self.runtime._enclave.ecall("reenter")


class TestMeasurement:

    def test_same_code_same_measurement(self, platform, vendor_key):
        a = EnclaveBuilder(platform, EchoLibrary).measure()
        b = EnclaveBuilder(platform, EchoLibrary).measure()
        assert a == b

    def test_different_code_different_measurement(self, platform):
        a = EnclaveBuilder(platform, EchoLibrary).measure()
        b = EnclaveBuilder(platform, OtherLibrary).measure()
        assert a != b

    def test_measure_twice_rejected(self, platform):
        builder = EnclaveBuilder(platform, EchoLibrary)
        builder.measure()
        with pytest.raises(EnclaveError):
            builder.measure()


class TestEinit:

    def test_load_and_call(self, platform, vendor_key):
        enclave = load_enclave(platform, EchoLibrary, vendor_key)
        assert enclave.ecall("echo", b"hi") == b"echo:hi"

    def test_forged_sigstruct_rejected(self, platform, vendor_key):
        builder = EnclaveBuilder(platform, EchoLibrary)
        sigstruct = builder.sign(vendor_key)
        forged = Sigstruct(b"\x00" * 32, sigstruct.signer_public,
                           sigstruct.signature)
        with pytest.raises(AuthenticationError):
            forged.verify()

    def test_measurement_mismatch_rejected(self, platform, vendor_key):
        # Sign the OTHER library's measurement, load it for Echo.
        other = EnclaveBuilder(platform, OtherLibrary).sign(vendor_key)
        builder = EnclaveBuilder(platform, EchoLibrary)
        builder.measure()
        with pytest.raises(AuthenticationError):
            builder.initialize(other)

    def test_launch_control(self, platform, vendor_key):
        rogue = _generate_keypair_unchecked(768, 65537)
        platform.allowed_signers = {
            # only the legitimate vendor is whitelisted
            __import__("repro.sgx.enclave", fromlist=["mr_signer_of"])
            .mr_signer_of(vendor_key.public_key)
        }
        load_enclave(platform, EchoLibrary, vendor_key)  # allowed
        with pytest.raises(EnclaveError):
            load_enclave(platform, EchoLibrary, rogue)


class TestEcalls:

    def test_undeclared_ecall_rejected(self, platform, vendor_key):
        enclave = load_enclave(platform, EchoLibrary, vendor_key)
        with pytest.raises(EnclaveError):
            enclave.ecall("not_an_ecall")

    def test_ecall_counting_and_cost(self, platform, vendor_key):
        enclave = load_enclave(platform, EchoLibrary, vendor_key)
        cycles_before = platform.memory.cycles
        enclave.ecall("echo", b"x")
        costs = platform.spec.costs
        assert enclave.ecalls == 1
        assert platform.memory.cycles - cycles_before >= \
            costs.eenter_cycles + costs.eexit_cycles

    def test_nested_ecall_rejected(self, platform, vendor_key):
        enclave = load_enclave(platform, ReentrantLibrary, vendor_key)
        with pytest.raises(EnclaveError):
            enclave.ecall("reenter")

    def test_ecall_during_ocall_allowed(self, platform, vendor_key):
        """Real SGX allows re-entry while the thread is in an ocall."""
        enclave = load_enclave(platform, EchoLibrary, vendor_key)

        def nested(value):
            return enclave.ecall("echo", b"again")

        assert enclave.ecall("run_ocall", nested) == b"echo:again"

    def test_ocall_leaves_and_reenters(self, platform, vendor_key):
        enclave = load_enclave(platform, EchoLibrary, vendor_key)
        observed = {}

        def untrusted(value):
            observed["inside"] = platform.current_enclave
            return value * 2

        assert enclave.ecall("run_ocall", untrusted) == 42
        assert observed["inside"] is None
        assert enclave.ocalls == 1

    def test_destroyed_enclave_rejects_entry(self, platform, vendor_key):
        enclave = load_enclave(platform, EchoLibrary, vendor_key)
        enclave.destroy()
        with pytest.raises(EnclaveError):
            enclave.ecall("echo", b"x")

    def test_proxy(self, platform, vendor_key):
        proxy = make_proxy(load_enclave(platform, EchoLibrary,
                                        vendor_key))
        assert proxy.echo(b"p") == b"echo:p"


class TestKeys:

    def test_egetkey_outside_enclave_rejected(self, platform,
                                              vendor_key):
        enclave = load_enclave(platform, EchoLibrary, vendor_key)
        with pytest.raises(EnclaveError):
            enclave.runtime.egetkey(KeyPolicy.MRENCLAVE)

    def test_mrenclave_policy_differs_across_code(self, platform,
                                                  vendor_key):
        a = load_enclave(platform, EchoLibrary, vendor_key)
        b = load_enclave(platform, OtherLibrary, vendor_key)
        key_a = a.ecall("derive", KeyPolicy.MRENCLAVE)
        # OtherLibrary has no derive ecall; use direct derivation.
        key_b = platform.derive_seal_key(b.mr_enclave, b.mr_signer,
                                         KeyPolicy.MRENCLAVE)
        assert key_a != key_b

    def test_mrsigner_policy_shared_across_code(self, platform,
                                                vendor_key):
        a = load_enclave(platform, EchoLibrary, vendor_key)
        b = load_enclave(platform, OtherLibrary, vendor_key)
        key_a = platform.derive_seal_key(a.mr_enclave, a.mr_signer,
                                         KeyPolicy.MRSIGNER)
        key_b = platform.derive_seal_key(b.mr_enclave, b.mr_signer,
                                         KeyPolicy.MRSIGNER)
        assert key_a == key_b

    def test_seal_key_platform_bound(self, vendor_key):
        p1 = SgxPlatform(attestation_key_bits=768, seed=b"\x01" * 32)
        p2 = SgxPlatform(attestation_key_bits=768, seed=b"\x02" * 32)
        args = (b"m" * 32, b"s" * 32, KeyPolicy.MRENCLAVE)
        assert p1.derive_seal_key(*args) != p2.derive_seal_key(*args)
