"""Measurement-log (MRENCLAVE) unit tests."""

import pytest

from repro.sgx.measurement import MeasurementLog, measure_code


class TestMeasurementLog:

    def _measure(self, operations):
        log = MeasurementLog()
        for op in operations:
            kind, args = op[0], op[1:]
            getattr(log, kind)(*args)
        return log.finalize()

    def test_deterministic(self):
        ops = [("ecreate", 8192), ("eadd", 0, 5),
               ("eextend", 0, 0, b"code")]
        assert self._measure(ops) == self._measure(ops)

    def test_content_sensitivity(self):
        base = [("ecreate", 8192), ("eadd", 0, 5)]
        a = self._measure(base + [("eextend", 0, 0, b"code-a")])
        b = self._measure(base + [("eextend", 0, 0, b"code-b")])
        assert a != b

    def test_layout_sensitivity(self):
        """Same bytes at a different page offset measure differently."""
        a = self._measure([("ecreate", 8192), ("eadd", 0, 5),
                           ("eextend", 0, 0, b"x")])
        b = self._measure([("ecreate", 8192), ("eadd", 4096, 5),
                           ("eextend", 4096, 0, b"x")])
        assert a != b

    def test_flags_sensitivity(self):
        a = self._measure([("ecreate", 4096), ("eadd", 0, 5)])
        b = self._measure([("ecreate", 4096), ("eadd", 0, 7)])
        assert a != b

    def test_order_sensitivity(self):
        a = self._measure([("ecreate", 8192), ("eadd", 0, 5),
                           ("eadd", 4096, 5)])
        b = self._measure([("ecreate", 8192), ("eadd", 4096, 5),
                           ("eadd", 0, 5)])
        assert a != b

    def test_chunk_boundaries_unambiguous(self):
        """Field framing prevents concatenation collisions."""
        a = self._measure([("ecreate", 4096), ("eadd", 0, 5),
                           ("eextend", 0, 0, b"ab"),
                           ("eextend", 0, 256, b"c")])
        b = self._measure([("ecreate", 4096), ("eadd", 0, 5),
                           ("eextend", 0, 0, b"a"),
                           ("eextend", 0, 256, b"bc")])
        assert a != b

    def test_finalize_freezes(self):
        log = MeasurementLog()
        log.ecreate(4096)
        log.finalize()
        with pytest.raises(RuntimeError):
            log.eadd(0, 5)

    def test_operation_count(self):
        log = MeasurementLog()
        log.ecreate(4096)
        log.eadd(0, 5)
        assert log.n_operations == 2

    def test_digest_length(self):
        log = MeasurementLog()
        log.ecreate(4096)
        assert len(log.finalize()) == 32


class TestMeasureCode:

    def test_stable(self):
        assert measure_code(b"lib") == measure_code(b"lib")

    def test_sensitive(self):
        assert measure_code(b"lib-a") != measure_code(b"lib-b")
