"""Sealed checkpoints: store semantics, cadence, rollback defense."""

import pytest

from repro.errors import RecoveryError, RollbackError
from repro.recovery.checkpoint import (Checkpoint, CheckpointManager,
                                       CheckpointStore)
from repro.recovery.wal import WriteAheadLog


class TestCheckpointStore:

    def test_publish_advances_latest(self):
        store = CheckpointStore()
        first = store.publish(b"blob-1", b"cid", 3)
        assert store.latest() is first
        second = store.publish(b"blob-2", b"cid", 7)
        assert store.latest() is second
        assert [c.index for c in store.held()] == [1, 2]

    def test_retention_evicts_oldest(self):
        store = CheckpointStore(retain=2)
        for seq in range(4):
            store.publish(b"blob-%d" % seq, b"cid", seq)
        assert len(store) == 2
        assert store.evicted == 2
        assert [c.wal_seq for c in store.held()] == [2, 3]
        assert store.latest().wal_seq == 3

    def test_retention_validated(self):
        with pytest.raises(RecoveryError):
            CheckpointStore(retain=0)

    def test_serve_stale_requires_history(self):
        store = CheckpointStore()
        store.publish(b"only", b"cid", 1)
        with pytest.raises(RecoveryError):
            store.serve_stale(back=1)

    def test_serve_stale_moves_the_pointer(self):
        store = CheckpointStore()
        store.publish(b"old", b"cid", 1)
        fresh = store.publish(b"new", b"cid", 2)
        stale = store.serve_stale(back=1)
        assert store.latest() is stale
        assert stale is not fresh
        assert stale.sealed_bytes == b"old"


def manager_for(world, interval=2):
    wal = WriteAheadLog(chain_key=b"\x11" * 16)
    world.router.wal = wal
    return CheckpointManager(world.router, wal, interval=interval), wal


class TestCheckpointManager:

    def test_cadence_follows_wal_lag(self, world):
        manager, wal = manager_for(world, interval=2)
        world.client("c0", {"symbol": "S0"})
        world.router.pump()
        assert manager.lag == 1
        assert manager.maybe_checkpoint() is None
        world.client("c1", {"symbol": "S1"})
        world.router.pump()
        assert manager.lag == 2
        checkpoint = manager.maybe_checkpoint()
        assert checkpoint is not None
        assert checkpoint.wal_seq == 2
        assert manager.lag == 0
        assert len(wal) == 0          # covered prefix pruned
        assert wal.last_seq == 2      # numbering continues

    def test_restore_uses_the_sealed_wal_position(self, world):
        """The store's wal_seq claim is advisory; the sealed copy wins."""
        manager, _wal = manager_for(world)
        world.client("c0", {"symbol": "S0"})
        world.client("c1", {"symbol": "S1"})
        world.router.pump()
        honest = manager.checkpoint()
        assert honest.wal_seq == 2
        # A lying store claims the snapshot covers more than it does
        # (which would make recovery skip replaying real records).
        manager.store._latest = Checkpoint(
            honest.index, honest.sealed_bytes, honest.counter_id,
            wal_seq=999)
        world.router.reload_enclave()
        world.provider.provision_router(world.router)
        count, wal_seq = manager.restore_latest()
        assert count == 2
        assert wal_seq == 2           # sealed app_data, not the claim

    def test_restore_without_checkpoints_raises(self, world):
        manager, _wal = manager_for(world)
        with pytest.raises(RecoveryError):
            manager.restore_latest()

    def test_stale_checkpoint_rejected(self, world):
        manager, _wal = manager_for(world)
        world.client("c0", {"symbol": "S0"})
        world.router.pump()
        manager.checkpoint()
        world.client("c1", {"symbol": "S1"})
        world.router.pump()
        manager.checkpoint()
        manager.store.serve_stale(back=1)
        world.router.reload_enclave()
        world.provider.provision_router(world.router)
        with pytest.raises(RollbackError):
            manager.restore_latest()

    def test_wal_seq_encoding_roundtrip(self):
        encoded = CheckpointManager.encode_wal_seq(12345)
        assert CheckpointManager.decode_wal_seq(encoded) == 12345
        with pytest.raises(RecoveryError):
            CheckpointManager.decode_wal_seq(b"short")

    def test_interval_validated(self, world):
        with pytest.raises(RecoveryError):
            CheckpointManager(world.router, WriteAheadLog(), interval=0)
