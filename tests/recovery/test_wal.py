"""Write-ahead log: chaining, pruning, persistence, torn tails."""

import pytest

from repro.errors import WalError
from repro.recovery.wal import WriteAheadLog

KEY = b"\x2a" * 16


def filled_log(n=5):
    log = WriteAheadLog(chain_key=KEY)
    for index in range(n):
        log.append("REG", b"frame-%d" % index)
    return log


class TestAppendAndChain:

    def test_sequences_are_dense_from_one(self):
        log = filled_log(3)
        assert [r.seq for r in log] == [1, 2, 3]
        assert log.last_seq == 3
        assert len(log) == 3

    def test_each_tag_covers_the_previous(self):
        log = filled_log(2)
        first, second = list(log)
        assert second.tag == log._chain_tag(first.tag, second.seq,
                                            second.kind, second.frame)
        assert first.tag != second.tag

    def test_kind_validated(self):
        log = WriteAheadLog(chain_key=KEY)
        with pytest.raises(WalError):
            log.append("", b"frame")

    def test_records_after(self):
        log = filled_log(4)
        assert [r.seq for r in log.records_after(2)] == [3, 4]
        assert log.records_after(4) == []
        assert len(log.records_after(0)) == 4


class TestPruning:

    def test_prune_drops_covered_prefix(self):
        log = filled_log(5)
        assert log.prune_through(3) == 3
        assert [r.seq for r in log] == [4, 5]
        assert log.pruned_through == 3
        assert log.last_seq == 5

    def test_prune_is_idempotent(self):
        log = filled_log(5)
        log.prune_through(3)
        assert log.prune_through(3) == 0
        assert log.pruned_through == 3

    def test_append_continues_after_prune(self):
        log = filled_log(3)
        log.prune_through(3)
        assert log.append("REG", b"later") == 4


class TestPersistence:

    def test_roundtrip_preserves_everything(self):
        log = filled_log(4)
        log.append("UNREG", b"bye")
        copy = WriteAheadLog.from_bytes(log.to_bytes())
        assert [(r.seq, r.kind, r.frame, r.tag) for r in copy] \
            == [(r.seq, r.kind, r.frame, r.tag) for r in log]
        assert copy.chain_key == log.chain_key
        assert copy.last_seq == log.last_seq
        assert copy.torn_tail_drops == 0

    def test_roundtrip_after_prune_still_verifies(self):
        """The anchor tag keeps the retained suffix chain-checkable."""
        log = filled_log(6)
        log.prune_through(4)
        copy = WriteAheadLog.from_bytes(log.to_bytes())
        assert [r.seq for r in copy] == [5, 6]
        assert copy.pruned_through == 4
        assert copy.torn_tail_drops == 0
        # and the restored log keeps chaining correctly
        copy.append("REG", b"more")
        assert copy.last_seq == 7

    def test_restored_log_accepts_new_appends_identically(self):
        log = filled_log(2)
        copy = WriteAheadLog.from_bytes(log.to_bytes())
        assert log.append("REG", b"x") == copy.append("REG", b"x")
        assert list(log)[-1].tag == list(copy)[-1].tag


class TestTornTailAndTamper:

    def test_truncated_record_dropped(self):
        log = filled_log(4)
        image = log.to_bytes()
        copy = WriteAheadLog.from_bytes(image[:-3])
        assert [r.seq for r in copy] == [1, 2, 3]
        assert copy.torn_tail_drops == 1

    def test_flipped_byte_truncates_from_there(self):
        log = filled_log(4)
        image = bytearray(log.to_bytes())
        # Damage the *second* record's frame bytes: records 2..4 are
        # untrustworthy, record 1 survives.
        second = list(log)[1]
        damage_at = image.index(second.frame)
        image[damage_at] ^= 0x01
        copy = WriteAheadLog.from_bytes(bytes(image))
        assert [r.seq for r in copy] == [1]
        assert copy.torn_tail_drops == 1

    def test_new_appends_continue_after_torn_tail(self):
        """Recovery keeps journalling after truncating a torn tail."""
        log = filled_log(3)
        copy = WriteAheadLog.from_bytes(log.to_bytes()[:-1])
        assert copy.last_seq == 2
        assert copy.append("REG", b"fresh") == 3

    def test_bad_magic_rejected(self):
        image = bytearray(filled_log(1).to_bytes())
        image[0] ^= 0xFF
        with pytest.raises(WalError):
            WriteAheadLog.from_bytes(bytes(image))

    def test_short_header_rejected(self):
        with pytest.raises(WalError):
            WriteAheadLog.from_bytes(b"SCBRWAL1")

    def test_sequence_gap_rejected(self):
        log = filled_log(1)
        skipped = list(filled_log(3))[2]     # seq 3 right after seq 1
        with pytest.raises(WalError):
            WriteAheadLog.from_bytes(log.to_bytes() + skipped.encode())
