"""Supervised restart: crash injection, recovery, determinism."""

import pytest

from repro.errors import RecoveryError, RollbackError
from repro.recovery.supervisor import (CrashSchedule, MODE_ENTER,
                                       MODE_EXIT, RouterSupervisor)
from repro.recovery.wal import WriteAheadLog

from .conftest import World


class TestCrashSchedule:

    def test_same_seed_same_draws(self):
        a = CrashSchedule(seed=42, mean_interval=10)
        b = CrashSchedule(seed=42, mean_interval=10)
        assert [a.draw() for _ in range(20)] \
            == [b.draw() for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = [CrashSchedule(seed=1).draw() for _ in range(10)]
        b = [CrashSchedule(seed=2).draw() for _ in range(10)]
        assert a != b

    def test_fuses_positive_and_modes_valid(self):
        schedule = CrashSchedule(seed=3, mean_interval=5)
        for _ in range(50):
            fuse, mode = schedule.draw()
            assert fuse >= 1
            assert mode in (MODE_ENTER, MODE_EXIT)

    def test_max_crashes_exhausts(self):
        schedule = CrashSchedule(seed=0, max_crashes=2)
        assert schedule.draw() is not None
        assert schedule.draw() is not None
        assert schedule.draw() is None

    def test_interval_validated(self):
        with pytest.raises(RecoveryError):
            CrashSchedule(mean_interval=0)


class ScriptedSchedule:
    """Schedule whose crashes are written out explicitly by the test."""

    def __init__(self, draws):
        self._draws = list(draws)

    def draw(self):
        return self._draws.pop(0) if self._draws else None


def supervised(world, schedule=None, checkpoint_interval=4):
    return RouterSupervisor(world.router, world.provider.provision_router,
                            wal=WriteAheadLog(chain_key=b"\x07" * 16),
                            schedule=schedule,
                            checkpoint_interval=checkpoint_interval)


class TestSupervisedRecovery:

    def test_soak_recovers_every_crash_without_losing_state(
            self, vendor_key):
        world = World(vendor_key)
        supervisor = supervised(
            world, CrashSchedule(seed=23, mean_interval=6))
        alice = world.client("alice", {"symbol": "HAL"})
        supervisor.pump()

        sent = 80
        for index in range(sent):
            world.publisher.publish(
                "router", {"symbol": "HAL", "price": float(index)},
                b"tick %d" % index)
            supervisor.pump()
            alice.pump()
        supervisor.run(8)
        alice.pump()

        stats = supervisor.stats()
        metrics = stats["metrics"]
        crashes = metrics["recovery.crashes_total"]
        assert crashes >= 5
        assert metrics["recovery.recoveries_total"] == crashes
        # zero lost registrations, zero lost or duplicated traffic
        assert stats["subscriptions"] == 1
        assert world.router.enclave.ecall("verify_invariants")
        assert len(alice.received) == sent
        assert metrics["router.publications_total"] == sent
        # recovery surfaced through the standard stats() channel
        assert metrics["recovery.time_us.count"] == crashes
        assert metrics["recovery.time_us.sum"] > 0
        assert metrics["recovery.rollback_rejected_total"] == 0

    def test_registrations_survive_when_crashes_hit_them(
            self, vendor_key):
        """Registrations accepted between checkpoints are replayed,
        not lost — including the one the crash interrupted."""
        world = World(vendor_key)
        # Die at entry of the very next ecall (the REG's ecall), then
        # again right after the following ecall completes.
        supervisor = supervised(
            world, ScriptedSchedule([(1, MODE_ENTER), (2, MODE_EXIT)]))
        world.client("alice", {"symbol": "HAL"})
        supervisor.pump()     # REG's ecall is killed at entry
        metrics = world.registry.snapshot()
        assert metrics["recovery.crashes_total{mode=enter}"] == 1
        # journalled before the ecall, replayed during recovery, and
        # the in-flight copy suppressed rather than applied twice
        assert metrics["recovery.wal_replayed_total{kind=REG}"] == 1
        assert metrics["recovery.inflight_suppressed_total"] == 1
        assert world.router.engine_stats()[0] == 1
        assert world.router.registrations == 1

        world.client("bob", {"symbol": "IBM"})
        supervisor.pump()     # the REG succeeds, the enclave dies after
        # the corpse is noticed at the next entry; stats() recovers it
        assert supervisor.stats()["subscriptions"] == 2
        metrics = world.registry.snapshot()
        assert metrics["recovery.crashes_total{mode=exit}"] == 1
        # an exit-mode death costs nothing to replay twice: bob's REG
        # was applied before the death *and* journalled, and the replay
        # is idempotent
        assert world.router.enclave.ecall("verify_invariants")
        assert world.router.registrations == 2

    def test_rollback_attack_rejected_and_counted(self, vendor_key):
        world = World(vendor_key)
        supervisor = supervised(world, checkpoint_interval=1)
        world.client("alice", {"symbol": "HAL"})
        supervisor.pump()     # checkpoint 1
        world.client("bob", {"symbol": "IBM"})
        supervisor.pump()     # checkpoint 2
        assert supervisor.checkpoints.checkpoints_taken == 2

        supervisor.checkpoints.store.serve_stale(back=1)
        world.router.enclave.destroy()
        with pytest.raises(RollbackError):
            supervisor.recover()
        metrics = world.router.stats()["metrics"]
        assert metrics["recovery.rollback_rejected_total"] == 1
        assert metrics["recovery.recoveries_total"] == 0

    def test_tampered_wal_record_fails_replay_loudly(self, vendor_key):
        """A forged WAL entry cannot inject a registration: the replay
        re-runs the provider-signature check inside the enclave."""
        world = World(vendor_key)
        supervisor = supervised(world)
        world.client("alice", {"symbol": "HAL"})
        world.router.pump()
        supervisor.wal.append("REG", b"REG:forged-by-the-host")
        world.router.enclave.destroy()
        supervisor.recover()
        metrics = world.registry.snapshot()
        assert metrics["recovery.replay_failures_total"] == 1
        assert metrics["recovery.wal_replayed_total"] == 1
        assert world.router.engine_stats()[0] == 1

    def test_pump_contract_matches_router(self, vendor_key):
        """Without a schedule the supervisor is a transparent wrapper."""
        world = World(vendor_key)
        supervisor = supervised(world)
        alice = world.client("alice", {"symbol": "HAL"})
        assert supervisor.pump() == 1      # the REG frame
        world.publisher.publish("router",
                                {"symbol": "HAL", "price": 1.0},
                                b"tick")
        assert supervisor.pump() == 1      # the PUB frame
        alice.pump()
        assert alice.received == [b"tick"]
        assert world.registry.snapshot()[
            "recovery.crashes_total"] == 0


class TestDeterminism:

    @staticmethod
    def run_once(vendor_key, seed):
        world = World(vendor_key, platform_seed=b"\x05" * 32)
        supervisor = RouterSupervisor(
            world.router, world.provider.provision_router,
            wal=WriteAheadLog(chain_key=b"\x03" * 16),
            schedule=CrashSchedule(seed=seed, mean_interval=5),
            checkpoint_interval=3)
        clients = [world.client(f"c{i}",
                                {"symbol": "HAL", "price": ("<", 10.0 + i)})
                   for i in range(3)]
        supervisor.pump()
        for index in range(30):
            world.publisher.publish(
                "router", {"symbol": "HAL", "price": float(index % 20)},
                b"tick %d" % index)
            supervisor.pump()
            for client in clients:
                client.pump()
        supervisor.run(6)
        supervisor.disarm()
        supervisor.stats()    # recovers a trailing exit-mode corpse
        digest = world.router.enclave.ecall("registration_digest")
        invariants = world.router.enclave.ecall("verify_invariants")
        return world, supervisor, digest, invariants

    def test_identical_seed_identical_recovered_state(self, vendor_key):
        world_a, sup_a, digest_a, ok_a = self.run_once(vendor_key, 9)
        world_b, sup_b, digest_b, ok_b = self.run_once(vendor_key, 9)
        assert ok_a and ok_b
        assert digest_a == digest_b                  # byte-identical poset
        stats_a, stats_b = sup_a.stats(), sup_b.stats()
        assert stats_a == stats_b                    # full snapshot equality
        assert stats_a["metrics"]["recovery.crashes_total"] >= 1

    def test_different_crash_seed_still_converges(self, vendor_key):
        """Crash timing must not change the *state*, only the metrics."""
        _wa, _sa, digest_a, ok_a = self.run_once(vendor_key, 9)
        _wb, _sb, digest_b, ok_b = self.run_once(vendor_key, 10)
        assert ok_a and ok_b
        assert digest_a == digest_b
