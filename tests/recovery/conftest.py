"""Shared world-building helpers for the recovery test suite."""

import pytest

from repro.core.engine import ScbrEnclaveLibrary
from repro.core.provider import ServiceProvider
from repro.core.publisher import Publisher
from repro.core.router import RetryPolicy, Router
from repro.core.subscriber import Client
from repro.crypto.rsa import _generate_keypair_unchecked
from repro.network.bus import MessageBus
from repro.obs.metrics import MetricsRegistry
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuilder
from repro.sgx.platform import SgxPlatform


@pytest.fixture(scope="session")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


class World:
    """One provisioned router fabric on one simulated platform."""

    def __init__(self, vendor_key, platform_seed=None, fault_plan=None):
        self.registry = MetricsRegistry()
        self.bus = MessageBus(fault_plan=fault_plan,
                              metrics=self.registry)
        self.platform = SgxPlatform(attestation_key_bits=768,
                                    seed=platform_seed)
        self.ias = AttestationService(signing_key_bits=768)
        self.ias.register_platform(self.platform)
        expected = EnclaveBuilder(self.platform,
                                  ScbrEnclaveLibrary).measure()
        self.router = Router(self.bus, self.platform, vendor_key,
                             rsa_bits=768, metrics=self.registry,
                             retry_policy=RetryPolicy(max_attempts=3))
        self.provider = ServiceProvider(
            self.bus, rsa_bits=768, attestation_service=self.ias,
            expected_mr_enclave=expected)
        self.provider.provision_router(self.router)
        self.publisher = Publisher(self.bus, self.provider.keys,
                                   self.provider.group)

    def client(self, client_id, subscription):
        client = Client(self.bus, client_id,
                        self.provider.keys.public_key)
        client.process_admission(self.provider.admit_client(client_id))
        client.subscribe("provider", subscription)
        self.provider.pump("router")
        return client


@pytest.fixture
def world(vendor_key):
    return World(vendor_key)
