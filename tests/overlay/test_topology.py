"""Topology validation and seeded-builder determinism."""

import pytest

from repro.errors import RoutingError
from repro.overlay.topology import Topology


class TestValidation:

    def test_needs_at_least_one_broker(self):
        with pytest.raises(RoutingError):
            Topology((), ())

    def test_duplicate_broker_names_rejected(self):
        with pytest.raises(RoutingError):
            Topology(("b1", "b1"), ())

    def test_edge_to_unknown_broker_rejected(self):
        with pytest.raises(RoutingError):
            Topology(("b1", "b2"), (("b1", "b9"),))

    def test_self_loop_rejected(self):
        with pytest.raises(RoutingError):
            Topology(("b1", "b2"), (("b1", "b1"), ("b1", "b2")))

    def test_duplicate_edge_rejected_regardless_of_order(self):
        with pytest.raises(RoutingError):
            Topology(("b1", "b2"), (("b1", "b2"), ("b2", "b1")))

    def test_disconnected_graph_rejected(self):
        with pytest.raises(RoutingError) as excinfo:
            Topology(("b1", "b2", "b3", "b4"), (("b1", "b2"),))
        assert "disconnected" in str(excinfo.value)

    def test_neighbours_sorted_and_validated(self):
        topology = Topology(("b1", "b2", "b3"),
                            (("b2", "b1"), ("b1", "b3")))
        assert topology.neighbours("b1") == ("b2", "b3")
        assert topology.neighbours("b3") == ("b1",)
        with pytest.raises(RoutingError):
            topology.neighbours("b9")

    def test_single_broker_topology_is_valid(self):
        topology = Topology(("b1",), ())
        assert topology.n_brokers == 1
        assert topology.neighbours("b1") == ()


class TestBuilders:

    def test_line_is_a_chain(self):
        topology = Topology.line(4)
        assert topology.shape == "line"
        assert topology.brokers == ("b1", "b2", "b3", "b4")
        assert topology.edges == (("b1", "b2"), ("b2", "b3"),
                                  ("b3", "b4"))
        assert topology.neighbours("b2") == ("b1", "b3")

    def test_tree_is_spanning_and_seed_deterministic(self):
        first = Topology.tree(8, seed=5)
        again = Topology.tree(8, seed=5)
        assert first.edges == again.edges
        assert len(first.edges) == 7  # spanning: connectivity is
        # already enforced by the constructor, so n-1 edges = a tree.
        assert first.shape == "tree"

    def test_tree_respects_max_children(self):
        topology = Topology.tree(9, seed=2, max_children=2)
        fanout = {}
        for parent, _child in topology.edges:
            fanout[parent] = fanout.get(parent, 0) + 1
        assert max(fanout.values()) <= 2

    def test_tree_rejects_zero_children(self):
        with pytest.raises(RoutingError):
            Topology.tree(3, max_children=0)

    def test_random_adds_chords_creating_cycles(self):
        topology = Topology.random(5, seed=11, extra_edges=2)
        assert topology.shape == "random"
        assert len(topology.edges) == 4 + 2  # spanning tree + chords
        assert Topology.random(5, seed=11, extra_edges=2).edges \
            == topology.edges

    def test_default_ttl_covers_any_simple_path(self):
        assert Topology.line(6).default_ttl() == 6
        assert Topology.random(4, seed=1).default_ttl() == 4
