"""Overlay soak: a transit broker dies repeatedly under live traffic.

The line topology puts broker ``b2`` on every delivery path, then a
seeded, unbounded crash schedule keeps killing its enclave while
publications stream through from both ends. The bar at the end of the
run is *conservation*: every publication is delivered to exactly the
clients whose subscription it matches, exactly once — recovery (WAL
replay + in-flight resume) must lose nothing, and the host-side
(origin, sequence) dedup window must drop every crash-induced repeat.

``SCBR_OVERLAY_SOAK_TICKS`` lengthens the run (CI uses 600 ticks);
the default keeps the tier-1 suite fast.
"""

import os

from repro.overlay import OverlayNetwork, Topology
from repro.recovery import CrashSchedule


def soak_ticks() -> int:
    return int(os.environ.get("SCBR_OVERLAY_SOAK_TICKS", "120"))


def test_transit_broker_crashes_conserve_every_delivery(vendor_key):
    ticks = soak_ticks()
    topology = Topology.line(3)
    network = OverlayNetwork(
        topology, vendor_key,
        crash_schedules={"b2": CrashSchedule(seed=29,
                                             mean_interval=10)})
    try:
        network.client("alice", "b1", subscription={"symbol": "HAL"})
        network.client("bob", "b3", subscription={"symbol": "IBM"})
        network.settle()

        expected = {"alice": [], "bob": []}
        for tick in range(ticks):
            symbol = "HAL" if tick % 2 == 0 else "IBM"
            payload = b"soak %d" % tick
            entry = topology.brokers[tick % len(topology.brokers)]
            network.publish({"symbol": symbol,
                             "price": float(tick)}, payload,
                            at=entry)
            expected["alice" if symbol == "HAL" else "bob"].append(
                payload)
            network.pump_all()

        # Chaos over: stop injecting, drain everything still owed.
        network.disarm()
        network.settle(max_rounds=1024)
        deliveries = network.deliveries()
    finally:
        network.close()

    # Exactly-once conservation, order-insensitive: retries delayed by
    # a recovery may legitimately land behind younger publications.
    for client_id, payloads in expected.items():
        assert sorted(deliveries[client_id]) == sorted(payloads), \
            f"{client_id} lost or duplicated deliveries"

    registry = network.nodes["b2"].metrics
    crashes = registry.counter("recovery.crashes_total").value
    assert crashes > 0, "the schedule never fired"
    assert registry.counter("recovery.recoveries_total").value \
        == crashes
    # The fleet-wide snapshot must still aggregate cleanly after the
    # run (dead gauges and per-link labels included).
    snapshot = network.snapshot()
    assert snapshot["overlay.publications_forwarded_total"] > 0
