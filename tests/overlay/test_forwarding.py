"""OverlayLinks unit tests: link registry, dedup window, TTL budget.

These are host-side mechanics — no enclave involved — so the tests
drive :class:`~repro.overlay.forwarding.OverlayLinks` directly with
callable "wires" that append to lists, and read the suppression
accounting straight off the metrics registry.
"""

import pytest

from repro.core.protocol import parse_overlay_publish
from repro.errors import RoutingError
from repro.obs.metrics import MetricsRegistry
from repro.overlay.forwarding import OverlayLinks

PUB = b"\x07inner-pub-frame"


def make_links(ttl=4, dedup_capacity=4096, neighbours=("b2", "b3")):
    registry = MetricsRegistry()
    links = OverlayLinks("b1", registry, ttl=ttl,
                         dedup_capacity=dedup_capacity)
    wires = {}
    for neighbour in neighbours:
        wires[neighbour] = []
        links.connect(neighbour, wires[neighbour].append)
    return registry, links, wires


class TestRegistry:

    def test_constructor_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(RoutingError):
            OverlayLinks("b1", registry, ttl=0)
        with pytest.raises(RoutingError):
            OverlayLinks("b1", registry, dedup_capacity=0)

    def test_connect_validation(self):
        _registry, links, _wires = make_links()
        with pytest.raises(RoutingError):
            links.connect("", lambda frame: None)
        with pytest.raises(RoutingError):
            links.connect("b1", lambda frame: None)  # self-link
        with pytest.raises(RoutingError):
            links.connect("b2", lambda frame: None)  # duplicate

    def test_send_to_unknown_link_raises(self):
        _registry, links, _wires = make_links()
        with pytest.raises(RoutingError):
            links.send_to("b9", b"frame")

    def test_sentinel_naming(self):
        assert OverlayLinks.sentinel_for("b7") == "link:b7"
        _registry, links, _wires = make_links()
        assert links.neighbours() == ["b2", "b3"]
        assert links.is_neighbour("b2")
        assert not links.is_neighbour("b9")


class TestDedupWindow:

    def test_mark_and_check(self):
        _registry, links, _wires = make_links()
        assert not links.already_seen("bX", 1)
        links.mark_seen("bX", 1)
        assert links.already_seen("bX", 1)

    def test_fifo_eviction_at_capacity(self):
        _registry, links, _wires = make_links(dedup_capacity=2)
        links.mark_seen("bX", 1)
        links.mark_seen("bX", 2)
        links.mark_seen("bX", 3)
        assert not links.already_seen("bX", 1)  # oldest evicted
        assert links.already_seen("bX", 2)
        assert links.already_seen("bX", 3)

    def test_remark_does_not_reorder_or_grow(self):
        registry, links, _wires = make_links(dedup_capacity=2)
        links.mark_seen("bX", 1)
        links.mark_seen("bX", 1)
        links.mark_seen("bX", 2)
        assert links.already_seen("bX", 1)
        assert registry.snapshot()["overlay.dedup_entries"] == 2


class TestForwarding:

    def test_origination_stamps_identity_and_burns_one_hop(self):
        registry, links, wires = make_links(ttl=4)
        used = links.forward_publication(PUB, ["link:b2"], None)
        assert used == 1
        assert len(wires["b2"]) == 1 and wires["b3"] == []
        origin, sequence, ttl, inner = parse_overlay_publish(
            wires["b2"][0])
        assert (origin, sequence, ttl, inner) == ("b1", 1, 3, PUB)
        # The originator must drop its own publication if a cycle
        # echoes it back.
        assert links.already_seen("b1", 1)
        counter = registry.counter(
            "overlay.publications_suppressed_total")
        assert counter.labelled(link="b3") == 1

    def test_sequences_are_fresh_per_origination(self):
        _registry, links, wires = make_links()
        links.forward_publication(PUB, ["link:b2"], None)
        links.forward_publication(PUB, ["link:b2"], None)
        sequences = [parse_overlay_publish(frame)[1]
                     for frame in wires["b2"]]
        assert sequences == [1, 2]

    def test_transit_skips_incoming_link_without_counting_it(self):
        registry, links, wires = make_links()
        used = links.forward_publication(
            PUB, ["link:b2", "link:b3"], "link:b2",
            origin="b9", sequence=7, ttl=2)
        assert used == 1
        assert wires["b2"] == [] and len(wires["b3"]) == 1
        assert parse_overlay_publish(wires["b3"][0]) \
            == ("b9", 7, 1, PUB)
        # The arrival link is not a candidate, so it must not show up
        # as "suppressed by the covering gate" either.
        counter = registry.counter(
            "overlay.publications_suppressed_total")
        assert counter.value == 0

    def test_exhausted_ttl_stops_the_forward(self):
        registry, links, wires = make_links()
        used = links.forward_publication(
            PUB, ["link:b3"], "link:b2",
            origin="b9", sequence=7, ttl=0)
        assert used == 0
        assert wires["b3"] == []
        assert registry.snapshot()["overlay.ttl_expired_total"] == 1

    def test_unmatched_links_are_suppressed_not_sent(self):
        registry, links, wires = make_links()
        used = links.forward_publication(PUB, [], None)
        assert used == 0
        assert wires["b2"] == [] and wires["b3"] == []
        counter = registry.counter(
            "overlay.publications_suppressed_total")
        assert counter.value == 2

    def test_interest_dirty_flag(self):
        _registry, links, _wires = make_links()
        assert not links.interest_dirty
        links.note_interest_change()
        assert links.interest_dirty
