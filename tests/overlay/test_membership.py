"""Failure detection and churn scheduling, unit-tested off-fabric.

The :class:`FailureDetector` is pure host logic driven by an explicit
tick, so every timing claim (grace periods, suspicion, confirmed
death, revival) is tested against exact tick counts rather than by
pumping a whole overlay. The :class:`ChurnSchedule` is tested for the
two properties the chaos harness leans on: determinism under a seed,
and feasibility — it never asks the overlay for an impossible event.
"""

import pytest

from repro.errors import RoutingError
from repro.obs.metrics import MetricsRegistry
from repro.overlay.membership import (ALIVE, DEAD, SUSPECT,
                                      ChurnSchedule, FailureDetector,
                                      MembershipConfig)

CONFIG = MembershipConfig(heartbeat_interval=2, suspect_after=4,
                          confirm_dead_after=8)


class Recorder:
    """Callback sink recording (event, neighbour) in order."""

    def __init__(self):
        self.events = []

    def heartbeat(self, neighbour):
        self.events.append(("hbt", neighbour))

    def dead(self, neighbour):
        self.events.append(("dead", neighbour))

    def revived(self, neighbour):
        self.events.append(("revived", neighbour))


@pytest.fixture()
def detector():
    recorder = Recorder()
    registry = MetricsRegistry()
    fd = FailureDetector("b1", registry, config=CONFIG,
                         send_heartbeat=recorder.heartbeat,
                         on_dead=recorder.dead,
                         on_revived=recorder.revived)
    fd.add_neighbour("b2")
    return fd, recorder, registry


class TestMembershipConfig:

    def test_defaults_are_valid(self):
        config = MembershipConfig()
        assert config.suspect_after > config.heartbeat_interval
        assert config.confirm_dead_after > config.suspect_after

    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_interval": 0},
        {"heartbeat_interval": 5, "suspect_after": 5},
        {"suspect_after": 12, "confirm_dead_after": 12},
    ])
    def test_incoherent_timings_are_rejected(self, kwargs):
        with pytest.raises(RoutingError):
            MembershipConfig(**kwargs)


class TestFailureDetector:

    def test_heartbeats_follow_the_interval(self, detector):
        fd, recorder, registry = detector
        for _ in range(6):
            fd.tick()
            fd.observe_heartbeat("b2")  # keep b2 alive throughout
        beats = [e for e in recorder.events if e == ("hbt", "b2")]
        assert len(beats) == 3  # ticks 2, 4, 6
        sent = registry.counter("membership.heartbeats_sent_total")
        seen = registry.counter("membership.heartbeats_received_total")
        assert sent.value == 3
        assert seen.value == 6

    def test_silence_walks_alive_suspect_dead(self, detector):
        fd, recorder, registry = detector
        for _ in range(CONFIG.suspect_after - 1):
            fd.tick()
        assert fd.state_of("b2") == ALIVE
        fd.tick()
        assert fd.state_of("b2") == SUSPECT
        assert ("dead", "b2") not in recorder.events
        for _ in range(CONFIG.confirm_dead_after
                       - CONFIG.suspect_after):
            fd.tick()
        assert fd.state_of("b2") == DEAD
        assert fd.dead_neighbours() == ["b2"]
        assert recorder.events.count(("dead", "b2")) == 1
        suspects = registry.counter("membership.suspicions_total")
        deaths = registry.counter("membership.deaths_confirmed_total")
        assert suspects.labelled(broker="b2") == 1
        assert deaths.labelled(broker="b2") == 1

    def test_any_evidence_resets_suspicion(self, detector):
        fd, _recorder, _registry = detector
        for _ in range(CONFIG.suspect_after):
            fd.tick()
        assert fd.state_of("b2") == SUSPECT
        fd.observe_traffic("b2")  # any frame is as good as an HBT
        assert fd.state_of("b2") == ALIVE
        fd.tick()
        assert fd.state_of("b2") == ALIVE

    def test_revival_fires_hook_and_measures_outage(self, detector):
        fd, recorder, registry = detector
        for _ in range(CONFIG.confirm_dead_after):
            fd.tick()
        assert fd.state_of("b2") == DEAD
        for _ in range(5):
            fd.tick()  # stays dead; no repeated on_dead
        assert recorder.events.count(("dead", "b2")) == 1
        fd.observe_heartbeat("b2")
        assert fd.state_of("b2") == ALIVE
        assert recorder.events.count(("revived", "b2")) == 1
        revivals = registry.counter("membership.revivals_total")
        assert revivals.labelled(broker="b2") == 1
        outage = registry.histogram("membership.outage_ticks")
        assert outage.count == 1
        assert outage.total == 5  # died at tick 8, revived after 13

    def test_notice_heal_is_immediate_evidence(self, detector):
        fd, recorder, _registry = detector
        for _ in range(CONFIG.confirm_dead_after):
            fd.tick()
        fd.notice_heal("b2")
        assert fd.state_of("b2") == ALIVE
        assert ("revived", "b2") in recorder.events

    def test_forgotten_neighbour_stops_being_watched(self, detector):
        fd, recorder, _registry = detector
        fd.forget("b2")
        assert fd.neighbours() == []
        for _ in range(CONFIG.confirm_dead_after):
            fd.tick()
        assert ("dead", "b2") not in recorder.events
        with pytest.raises(RoutingError):
            fd.state_of("b2")
        # Evidence about unknown neighbours is ignored, not an error.
        fd.observe_heartbeat("b2")
        fd.observe_traffic("b2")
        fd.notice_heal("b2")

    def test_added_neighbour_gets_a_fresh_grace_period(self, detector):
        fd, _recorder, _registry = detector
        for _ in range(CONFIG.suspect_after):
            fd.tick()
        fd.add_neighbour("b3")
        for _ in range(CONFIG.suspect_after - 1):
            fd.tick()
        assert fd.state_of("b3") == ALIVE
        fd.tick()
        assert fd.state_of("b3") == SUSPECT


class TestChurnSchedule:

    STATE = dict(up_links=[("b1", "b2"), ("b2", "b3")],
                 down_links=[], removable_brokers=["b3"],
                 crashable_brokers=["b1", "b2", "b3"], can_join=True)

    def test_same_seed_same_sequence(self):
        draws = []
        for _ in range(2):
            schedule = ChurnSchedule(seed=7, mean_interval=5)
            draws.append([(schedule.next_gap(),
                           schedule.draw(**self.STATE))
                          for _ in range(20)])
        assert draws[0] == draws[1]

    def test_different_seeds_diverge(self):
        sequences = []
        for seed in (1, 2):
            schedule = ChurnSchedule(seed=seed)
            sequences.append([schedule.draw(**self.STATE)
                              for _ in range(20)])
        assert sequences[0] != sequences[1]

    def test_draws_respect_the_allow_list(self):
        schedule = ChurnSchedule(seed=3, allow=("crash",))
        kinds = {schedule.draw(**self.STATE)[0] for _ in range(10)}
        assert kinds == {"crash"}

    def test_sever_is_infeasible_at_the_down_link_cap(self):
        schedule = ChurnSchedule(seed=3, allow=("sever", "heal"),
                                 max_down_links=1)
        state = dict(self.STATE, down_links=[("b1", "b2")],
                     up_links=[("b2", "b3")])
        for _ in range(10):
            kind, target = schedule.draw(**state)
            assert kind == "heal"
            assert target == ("b1", "b2")

    def test_nothing_feasible_returns_none_without_spending(self):
        schedule = ChurnSchedule(seed=3, allow=("heal", "leave"))
        assert schedule.draw(up_links=[("b1", "b2")], down_links=[],
                             removable_brokers=[],
                             crashable_brokers=["b1"],
                             can_join=False) is None
        assert schedule.events_drawn == 0

    def test_max_events_exhausts_the_schedule(self):
        schedule = ChurnSchedule(seed=3, max_events=2)
        assert schedule.draw(**self.STATE) is not None
        assert schedule.draw(**self.STATE) is not None
        assert schedule.draw(**self.STATE) is None

    def test_bad_parameters_are_rejected(self):
        with pytest.raises(RoutingError):
            ChurnSchedule(mean_interval=0)
        with pytest.raises(RoutingError):
            ChurnSchedule(max_down_links=-1)
        with pytest.raises(RoutingError):
            ChurnSchedule(allow=("sever", "meteor"))
