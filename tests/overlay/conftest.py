"""Shared fixtures and the scripted-workload driver for overlay tests.

The equivalence suite's core move: one seeded workload script is
generated once and applied verbatim to two worlds exposing the same
driving surface — the real :class:`~repro.overlay.OverlayNetwork` and
the single-router :class:`~repro.overlay.FlatOracle` — after which the
decrypted deliveries per client must be byte-identical.
"""

import random

import pytest

from repro.crypto.rsa import _generate_keypair_unchecked

SYMBOLS = ("HAL", "IBM", "GE", "XRX")


@pytest.fixture(scope="session")
def vendor_key():
    return _generate_keypair_unchecked(768, 65537)


def make_script(topology, seed, n_clients=4, n_publishes=10,
                revoke_one=True):
    """A seeded workload: admissions with home placement, mixed
    subscriptions, publications entering at varying brokers, and
    (optionally) one mid-stream revocation. Returned as a list of
    ``(op, args)`` steps any driver surface can replay."""
    rng = random.Random(seed)
    steps = []
    client_ids = [f"c{i + 1}" for i in range(n_clients)]
    for client_id in client_ids:
        home = rng.choice(topology.brokers)
        symbol = rng.choice(SYMBOLS)
        if rng.random() < 0.5:
            subscription = {"symbol": symbol}
        else:
            bound = float(rng.randrange(10, 90))
            subscription = {"symbol": symbol, "price": ("<", bound)}
        steps.append(("client", (client_id, home, subscription)))
    steps.append(("settle", ()))
    victim = rng.choice(client_ids) if revoke_one else None
    for index in range(n_publishes):
        header = {"symbol": rng.choice(SYMBOLS),
                  "price": float(rng.randrange(0, 100))}
        payload = b"event %d" % index
        at = rng.choice(topology.brokers)
        steps.append(("publish", (header, payload, at)))
        # Settle per publication: delivery order is then deterministic
        # in both worlds, so the comparison can demand exact byte
        # equality rather than multiset equality.
        steps.append(("settle", ()))
        if victim is not None and index == n_publishes // 2:
            steps.append(("revoke", (victim,)))
            steps.append(("settle", ()))
    return steps


def make_partition_script(topology, seed, n_clients=4, n_publishes=8):
    """A workload that severs one random edge mid-stream, keeps
    publishing through the partition (store-and-forward territory),
    registers one new subscription *while* partitioned, then heals
    and publishes again. The oracle ignores sever/heal, so replaying
    this against both worlds asserts exactly-once delivery across a
    partition: refused forwards are dead-lettered and requeued on
    heal, and nothing arrives twice."""
    rng = random.Random(seed)
    steps = make_script(topology, seed, n_clients=n_clients,
                        n_publishes=n_publishes // 2, revoke_one=False)
    edge = rng.choice(topology.edges)
    steps.append(("sever", edge))
    for index in range(n_publishes // 2):
        header = {"symbol": rng.choice(SYMBOLS),
                  "price": float(rng.randrange(0, 100))}
        steps.append(("publish", (header, b"mid-cut %d" % index,
                                  rng.choice(topology.brokers))))
        steps.append(("settle", ()))
    # New interest while the overlay is split: its advert cannot cross
    # the severed edge, so the heal has a genuine delta to reconcile.
    # It uses a symbol never published mid-partition — a quarantined
    # publication is re-matched on requeue against *current* interest,
    # so a late subscriber overlapping the refused traffic would
    # legitimately receive events the oracle (where it subscribed
    # after them) does not. Disjointness keeps equivalence exact.
    steps.append(("client", (f"late{seed}", rng.choice(topology.brokers),
                             {"symbol": "LATE"})))
    steps.append(("settle", ()))
    steps.append(("heal", edge))
    steps.append(("settle", ()))
    # Only after heal + settle may the late subscriber be published
    # to — the staleness window DESIGN.md documents.
    steps.append(("publish", ({"symbol": "LATE", "price": 1.0},
                              b"for the late subscriber",
                              rng.choice(topology.brokers))))
    steps.append(("settle", ()))
    for index in range(2):
        header = {"symbol": rng.choice(SYMBOLS),
                  "price": float(rng.randrange(0, 100))}
        steps.append(("publish", (header, b"post-heal %d" % index,
                                  rng.choice(topology.brokers))))
        steps.append(("settle", ()))
    return steps


def run_script(world, steps, max_rounds=256):
    """Replay one workload script against any driver surface."""
    for op, args in steps:
        if op == "client":
            client_id, home, subscription = args
            world.client(client_id, home, subscription=subscription)
        elif op == "publish":
            header, payload, at = args
            world.publish(header, payload, at=at)
        elif op == "revoke":
            world.revoke(args[0])
        elif op == "settle":
            world.settle(max_rounds=max_rounds)
        elif op == "sever":
            world.sever_link(*args)
        elif op == "heal":
            world.heal_link(*args)
        else:  # pragma: no cover - script generator bug
            raise AssertionError(f"unknown op {op!r}")
    world.settle(max_rounds=max_rounds)
    return world.deliveries()
