"""Live membership: joins, clean leaves, crashes, and the chaos soak.

Everything here drives the real :class:`OverlayNetwork` membership
surface — the same code path the churn bench measures — and checks
the contracts one at a time: a joiner is attested like a founder and
pulls interest through anti-entropy (no bootstrap flood); a clean
leave is the *only* event that withdraws interest; a crashed broker
recovers without losing or duplicating deliveries; and a seeded
chaos soak (bounded by ``SCBR_CHURN_TICKS``) converges back to a
settled overlay with an empty link-debt DLQ.
"""

import json
import os
import random

import pytest

from repro.core.router import REASON_LINK_DOWN
from repro.overlay import ChurnSchedule, OverlayNetwork, Topology


@pytest.fixture()
def pair(vendor_key):
    network = OverlayNetwork(Topology.line(2), vendor_key)
    yield network
    network.close()


@pytest.fixture()
def line3(vendor_key):
    network = OverlayNetwork(Topology.line(3), vendor_key)
    yield network
    network.close()


class TestJoin:

    def test_joiner_is_attested_and_pulls_interest(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        node = pair.add_broker("b3", attach_to=("b2",))
        pair.settle()
        # Same trust story as the founders: the joiner ran on a fresh
        # IAS-registered platform and its enclave holds SK — an ecall
        # that requires provisioning succeeds.
        node.router.enclave.ecall("export_link_advert", "b3",
                                  "link:b2")
        # Anti-entropy pulled alice's interest to the new edge of the
        # overlay: a publication entering at b3 crosses two hops.
        pair.publish({"symbol": "HAL", "price": 2.0}, b"from the edge",
                     at="b3")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"from the edge"]

    def test_joiner_can_home_new_clients(self, pair):
        pair.add_broker("b3", attach_to=("b1", "b2"))
        pair.settle()
        pair.client("carol", "b3", subscription={"symbol": "GE"})
        pair.settle()
        pair.publish({"symbol": "GE", "price": 9.0}, b"to the joiner",
                     at="b1")
        pair.settle()
        assert pair.deliveries()["carol"] == [b"to the joiner"]

    def test_join_validates_names_and_attachment(self, pair):
        from repro.errors import RoutingError
        with pytest.raises(RoutingError):
            pair.add_broker("b1", attach_to=("b2",))  # taken
        with pytest.raises(RoutingError):
            pair.add_broker("b9", attach_to=())       # disconnected
        with pytest.raises(RoutingError):
            pair.add_broker("b9", attach_to=("ghost",))


class TestLeave:

    def test_clean_leave_withdraws_interest(self, line3, vendor_key):
        line3.client("alice", "b1", subscription={"symbol": "HAL"})
        line3.client("bob", "b2", subscription={"symbol": "IBM"})
        line3.settle()
        forwarded = line3.nodes["b2"].metrics.counter(
            "overlay.publications_forwarded_total")
        line3.add_broker("b4", attach_to=("b2", "b3"))
        line3.settle()
        line3.remove_broker("b3")
        line3.settle()
        assert "b3" not in line3.nodes
        # The departed broker held no interest of its own, and the
        # withdrawal kept b2's view exact: a publication nobody wants
        # entering at b2 is forwarded to no one beyond the gate.
        before = forwarded.labelled(link="b1")
        line3.publish({"symbol": "HAL", "price": 3.0}, b"still routes",
                      at="b4")
        line3.settle()
        assert line3.deliveries()["alice"] == [b"still routes"]
        assert forwarded.labelled(link="b1") == before + 1

    def test_leave_refuses_homed_clients_and_cuts(self, line3):
        from repro.errors import RoutingError
        line3.client("alice", "b2", subscription={"symbol": "HAL"})
        line3.settle()
        with pytest.raises(RoutingError):
            line3.remove_broker("b2")  # homes alice
        with pytest.raises(RoutingError):
            # b1 - b2 - b3: removing b2 would disconnect the graph if
            # clients were gone; here it still homes alice anyway, so
            # use the endpoints: removing b1 is fine, removing b2 not.
            line3.remove_broker("b2")
        line3.remove_broker("b1")
        assert sorted(line3.nodes) == ["b2", "b3"]


class TestCrash:

    def test_crashed_broker_recovers_and_routes(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        pair.publish({"symbol": "HAL", "price": 1.0}, b"before",
                     at="b2")
        pair.settle()
        pair.crash_broker("b2")
        pair.crash_broker("b2")  # idempotent on a corpse
        pair.publish({"symbol": "HAL", "price": 1.0}, b"after",
                     at="b2")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"before", b"after"]
        recoveries = pair.nodes["b2"].metrics.counter(
            "recovery.recoveries_total")
        assert recoveries.value == 1

    def test_crash_preserves_installed_remote_interest(self, pair):
        """WAL replay rebuilds the neighbour's advert (``SUM``/``SUMD``
        records), so the recovered gate still forwards."""
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        pair.crash_broker("b2")
        pair.publish({"symbol": "HAL", "price": 1.0}, b"survives",
                     at="b2")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"survives"]


class TestSettleDiagnostics:

    def test_backlog_report_names_the_stuck_queues(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        assert pair.backlog_report() == "nothing pending"
        pair.sever_link("b1", "b2")
        pair.publish({"symbol": "HAL", "price": 5.0}, b"stuck",
                     at="b2")
        report = pair.backlog_report()
        # Built before any pump: the publication sits in b2's inbox
        # and the severed link is named with its state.
        assert "b2: inbox=1" in report
        assert "link b1~b2: DOWN" in report
        # After settling, the quarantined forward leaves no queue
        # depth — only the severed link itself is still reported.
        pair.settle()
        report = pair.backlog_report()
        assert "inbox" not in report
        assert "link b1~b2: DOWN" in report
        pair.heal_link("b1", "b2")
        pair.settle()
        assert pair.backlog_report() == "nothing pending"

    def test_settle_failure_message_carries_the_report(self, pair,
                                                       monkeypatch):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        from repro.errors import RoutingError
        # Freeze the fabric so nothing can drain: every pump reports
        # activity without moving work.
        monkeypatch.setattr(pair, "pump_all",
                            lambda membership_active=True: 1)
        with pytest.raises(RoutingError) as excinfo:
            pair.settle(max_rounds=3)
        assert "did not settle within 3 rounds" in str(excinfo.value)


class TestChaosSoak:
    """Seeded end-to-end churn: the overlay must come back settled.

    ``SCBR_CHURN_TICKS`` bounds the event count so CI can run a longer
    soak than the default development-sized one.
    """

    def test_chaos_soak_converges(self, vendor_key):
        events_budget = int(os.environ.get("SCBR_CHURN_TICKS", "12"))
        rng = random.Random(99)
        topology = Topology.tree(5, seed=99)
        network = OverlayNetwork(topology, vendor_key)
        schedule = ChurnSchedule(seed=99, max_down_links=1,
                                 max_events=events_budget,
                                 allow=("sever", "heal", "join",
                                        "crash"))
        try:
            network.client("alice", topology.brokers[0],
                           subscription={"symbol": "HAL"})
            network.settle()
            published = 0
            joins = 0
            while True:
                event = schedule.draw(
                    up_links=[e for e in network.link_buses
                              if e not in network.down_links()],
                    down_links=network.down_links(),
                    removable_brokers=[],
                    crashable_brokers=sorted(network.nodes),
                    can_join=joins < 2)
                if event is None:
                    break
                kind, target = event
                if kind == "sever":
                    network.sever_link(*target)
                elif kind == "heal":
                    network.heal_link(*target)
                elif kind == "join":
                    joins += 1
                    attach = rng.choice(sorted(network.nodes))
                    network.add_broker(f"j{joins}", (attach,))
                elif kind == "crash":
                    network.crash_broker(target)
                # Traffic between events, with the membership clock
                # live — heartbeats, suspicion and revival all run.
                network.publish({"symbol": "HAL",
                                 "price": float(rng.randrange(100))},
                                b"soak %d" % published,
                                at=rng.choice(sorted(network.nodes)))
                published += 1
                for _ in range(schedule.next_gap()):
                    network.pump_all(membership_active=True)
            for edge in network.down_links():
                network.heal_link(*edge)
            network.settle(max_rounds=512)
            # Conservation: everything quarantined by severed links
            # was requeued, and alice (on the surviving side of every
            # partition or not) lost nothing — the payload set is
            # exactly the published set.
            assert sorted(network.deliveries()["alice"]) == sorted(
                b"soak %d" % i for i in range(published))
            for node in network.nodes.values():
                assert not [letter for letter in node.router.dead_letters
                            if letter.reason == REASON_LINK_DOWN]
            snapshot = network.snapshot()
            assert snapshot.get("router.dead_letters_requeued_total",
                                0) == snapshot.get(
                "router.link_down_dead_letters_total", 0)
        finally:
            network.close()


class TestBenchSmoke:

    def test_run_churn_bench_small(self, tmp_path):
        from repro.bench.churn import run_churn_bench
        from repro.bench.export import record_bench
        result = run_churn_bench(seed=5, n_clients=3,
                                 n_publications=4)
        assert result.zero_lost and result.zero_duplicated
        assert len(result.runs) == 6  # 3 topologies x 2 modes
        for run in result.runs:
            assert run.equivalent
        path = record_bench("churn", result, directory=tmp_path)
        payload = json.loads(open(path).read())
        assert payload["zero_lost"] is True
