"""Advert propagation: digest-gated re-advertisement suppression.

Driven through a real two-broker line — every advert here crosses an
actual link into an actual neighbour enclave — because the property
under test is end-to-end: *when* does a broker speak, and is silence
ever wrong. The suppression ledger is read straight from each node's
metrics registry.
"""

import pytest

from repro.overlay import OverlayNetwork, Topology


def counter(network, broker, name):
    return network.nodes[broker].metrics.counter(name)


@pytest.fixture()
def pair(vendor_key):
    network = OverlayNetwork(Topology.line(2), vendor_key)
    yield network
    network.close()


class TestSuppression:

    def test_empty_brokers_never_advertise(self, pair):
        pair.settle()
        for broker in ("b1", "b2"):
            sent = counter(pair, broker, "overlay.adverts_sent_total")
            assert sent.value == 0
            # The refresh pass ran (the change signature was unset) but
            # the empty covering set matched the host-computable empty
            # digest, so nothing went on the wire.
            suppressed = counter(pair, broker,
                                 "overlay.adverts_suppressed_total")
            assert suppressed.value >= 1

    def test_first_interest_is_advertised_and_routes(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        assert sent.labelled(link="b2") == 1
        # The advert must actually gate-open the b2 -> b1 link: an
        # event entering at b2 reaches alice's home broker.
        pair.publish({"symbol": "HAL", "price": 1.0}, b"via b2",
                     at="b2")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"via b2"]
        forwarded = counter(pair, "b2",
                            "overlay.publications_forwarded_total")
        assert forwarded.labelled(link="b1") == 1

    def test_covered_subscription_is_absorbed_silently(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        suppressed = counter(pair, "b1",
                             "overlay.adverts_suppressed_total")
        sends_before = sent.value
        suppressed_before = suppressed.value
        # Strictly narrower than alice's interest: the covering
        # antichain — and therefore the advert digest — is unchanged.
        pair.client("bob", "b1",
                    subscription={"symbol": "HAL",
                                  "price": ("<", 40.0)})
        pair.settle()
        assert sent.value == sends_before
        assert suppressed.value > suppressed_before

    def test_unregistration_that_changes_the_cover_readvertises(
            self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.client("bob", "b1",
                    subscription={"symbol": "HAL",
                                  "price": ("<", 40.0)})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        sends_before = sent.labelled(link="b2")
        # Revoking alice uncovers bob's narrower subscription: the
        # antichain changes, so b2 must hear about it.
        pair.revoke("alice")
        pair.settle()
        assert sent.labelled(link="b2") == sends_before + 1
        # And the new cover is exact: a price above bob's bound no
        # longer crosses the link.
        forwarded = counter(pair, "b2",
                            "overlay.publications_forwarded_total")
        crossings = forwarded.labelled(link="b1")
        pair.publish({"symbol": "HAL", "price": 90.0}, b"too dear",
                     at="b2")
        pair.settle()
        assert forwarded.labelled(link="b1") == crossings
        assert pair.deliveries().get("bob", []) == []

    def test_recovery_refreshes_but_does_not_flood(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        suppressed = counter(pair, "b1",
                             "overlay.adverts_suppressed_total")
        sends_before = sent.value
        suppressed_before = suppressed.value
        # Kill b1's enclave out of band and run the recovery protocol
        # (scheduled in-traffic deaths are exercised by the soak and
        # equivalence suites). Recovery rebuilds the same registrations
        # from WAL + checkpoint, so the re-exported covering set is
        # digest-identical: the bumped recovery counter forces a
        # refresh pass, but nothing is re-sent.
        pair.nodes["b1"].router.enclave.destroy()
        pair.nodes["b1"].supervisor.recover()
        pair.settle()
        recoveries = counter(pair, "b1", "recovery.recoveries_total")
        assert recoveries.value == 1
        assert sent.value == sends_before
        assert suppressed.value > suppressed_before
        # Routing still works on the rebuilt enclave.
        pair.publish({"symbol": "HAL"}, b"after recovery", at="b2")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"after recovery"]

    def test_quiescent_refresh_is_free(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        refreshes = counter(pair, "b1",
                            "overlay.advert_refreshes_total")
        refreshes_before = refreshes.value
        scheduler = pair.nodes["b1"].scheduler
        # Stable signature, clean dirty flag: not even an ecall.
        assert scheduler.refresh() == 0
        assert refreshes.value == refreshes_before
        # Forcing runs the export pass, but the digests still gate the
        # wire: nothing is sent.
        assert scheduler.refresh(force=True) == 0
        assert refreshes.value == refreshes_before + 1


class TestReconciliation:
    """Anti-entropy: healed links converge by delta, not reflood."""

    def test_heal_ships_a_delta_not_a_reflood(self, pair):
        # A broad pre-partition covering set makes the delta strictly
        # cheaper than a reflood, so the size-priced choice in the
        # scheduler must pick the SUMD arm.
        for index, symbol in enumerate(("HAL", "IBM", "GE")):
            pair.client(f"c{index}", "b1",
                        subscription={"symbol": symbol})
        pair.settle()
        deltas = counter(pair, "b1", "reconcile.delta_adverts_total")
        in_sync = counter(pair, "b1", "reconcile.in_sync_total")
        assert deltas.value == 0
        pair.sever_link("b1", "b2")
        pair.client("late", "b1", subscription={"symbol": "XRX"})
        pair.settle()  # the advert to b2 is owed, not lost
        pair.heal_link("b1", "b2")
        pair.settle()
        assert deltas.value == 1
        # The owed delta went out ahead of the DIG exchange, so the
        # probe answer verifies the peer in sync instead of re-sending.
        assert in_sync.value == 1
        # The delta actually opened the gate: XRX traffic entering at
        # b2 now crosses the healed link.
        pair.publish({"symbol": "XRX", "price": 2.0}, b"delta works",
                     at="b2")
        pair.settle()
        assert pair.deliveries()["late"] == [b"delta works"]

    def test_unchanged_peer_reconciles_silently(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        in_sync = counter(pair, "b1", "reconcile.in_sync_total")
        sends_before = sent.value
        pair.sever_link("b1", "b2")
        pair.settle()
        pair.heal_link("b1", "b2")
        pair.settle()
        # Nothing changed while the link was down: the exchanged DIG
        # probes are answered by suppression, not by adverts.
        assert sent.value == sends_before
        assert in_sync.value >= 1

    def test_delta_survives_receiver_crash_via_wal_replay(self, pair):
        for index, symbol in enumerate(("HAL", "IBM", "GE")):
            pair.client(f"c{index}", "b1",
                        subscription={"symbol": symbol})
        pair.settle()
        pair.sever_link("b1", "b2")
        pair.client("late", "b1", subscription={"symbol": "XRX"})
        pair.settle()
        pair.heal_link("b1", "b2")
        pair.settle()
        assert counter(pair, "b1",
                       "reconcile.delta_adverts_total").value == 1
        # Kill the broker that *installed* the delta. Recovery replays
        # the WAL — including the SUMD record — so the rebuilt gate
        # still forwards the delta-advertised interest.
        pair.crash_broker("b2")
        pair.publish({"symbol": "XRX", "price": 2.0}, b"replayed",
                     at="b2")
        pair.settle()
        assert pair.deliveries()["late"] == [b"replayed"]
        assert counter(pair, "b2",
                       "recovery.recoveries_total").value == 1

    def test_abandoned_export_counts_and_recovers(self, pair,
                                                  monkeypatch):
        """A refresh that cannot finish even after one in-line
        recovery counts an export failure, stays dirty, and succeeds
        on a later pump once the enclave truly recovers."""
        import pytest as _pytest

        from repro.errors import EnclaveLost

        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        node = pair.nodes["b1"]
        failures = counter(pair, "b1",
                           "propagation.advert_export_failures_total")
        pair.client("bob", "b1", subscription={"symbol": "IBM"})
        pair.pump_provider()
        node.supervisor.pump()  # register bob: the next refresh exports
        pair.crash_broker("b1")
        monkeypatch.setattr(node.supervisor, "recover", lambda: 0)
        with _pytest.raises(EnclaveLost):
            node.scheduler.refresh(force=True)
        assert failures.value == 1
        assert node.links.interest_dirty  # the debt is remembered
        monkeypatch.undo()
        pair.settle()  # real recovery path: supervisor rebuilds
        assert failures.value == 1
        pair.publish({"symbol": "IBM", "price": 2.0}, b"after",
                     at="b2")
        pair.settle()
        assert pair.deliveries()["bob"] == [b"after"]


class TestReconcileModes:

    def test_full_mode_never_sends_deltas(self, vendor_key):
        network = OverlayNetwork(Topology.line(2), vendor_key,
                                 reconcile_mode="full")
        try:
            network.client("alice", "b1",
                           subscription={"symbol": "HAL"})
            network.settle()
            network.sever_link("b1", "b2")
            network.client("bob", "b1", subscription={"symbol": "IBM"})
            network.settle()
            network.heal_link("b1", "b2")
            network.settle()
            snapshot = network.snapshot()
            assert snapshot.get("reconcile.delta_adverts_total", 0) == 0
            assert snapshot.get("reconcile.full_adverts_total", 0) > 0
            assert snapshot.get(
                "reconcile.advert_bytes_total{kind=delta}", 0) == 0
        finally:
            network.close()

    def test_unknown_mode_is_rejected(self, vendor_key):
        from repro.errors import RoutingError
        with pytest.raises(RoutingError):
            OverlayNetwork(Topology.line(2), vendor_key,
                           reconcile_mode="psychic")
