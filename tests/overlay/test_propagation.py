"""Advert propagation: digest-gated re-advertisement suppression.

Driven through a real two-broker line — every advert here crosses an
actual link into an actual neighbour enclave — because the property
under test is end-to-end: *when* does a broker speak, and is silence
ever wrong. The suppression ledger is read straight from each node's
metrics registry.
"""

import pytest

from repro.overlay import OverlayNetwork, Topology


def counter(network, broker, name):
    return network.nodes[broker].metrics.counter(name)


@pytest.fixture()
def pair(vendor_key):
    network = OverlayNetwork(Topology.line(2), vendor_key)
    yield network
    network.close()


class TestSuppression:

    def test_empty_brokers_never_advertise(self, pair):
        pair.settle()
        for broker in ("b1", "b2"):
            sent = counter(pair, broker, "overlay.adverts_sent_total")
            assert sent.value == 0
            # The refresh pass ran (the change signature was unset) but
            # the empty covering set matched the host-computable empty
            # digest, so nothing went on the wire.
            suppressed = counter(pair, broker,
                                 "overlay.adverts_suppressed_total")
            assert suppressed.value >= 1

    def test_first_interest_is_advertised_and_routes(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        assert sent.labelled(link="b2") == 1
        # The advert must actually gate-open the b2 -> b1 link: an
        # event entering at b2 reaches alice's home broker.
        pair.publish({"symbol": "HAL", "price": 1.0}, b"via b2",
                     at="b2")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"via b2"]
        forwarded = counter(pair, "b2",
                            "overlay.publications_forwarded_total")
        assert forwarded.labelled(link="b1") == 1

    def test_covered_subscription_is_absorbed_silently(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        suppressed = counter(pair, "b1",
                             "overlay.adverts_suppressed_total")
        sends_before = sent.value
        suppressed_before = suppressed.value
        # Strictly narrower than alice's interest: the covering
        # antichain — and therefore the advert digest — is unchanged.
        pair.client("bob", "b1",
                    subscription={"symbol": "HAL",
                                  "price": ("<", 40.0)})
        pair.settle()
        assert sent.value == sends_before
        assert suppressed.value > suppressed_before

    def test_unregistration_that_changes_the_cover_readvertises(
            self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.client("bob", "b1",
                    subscription={"symbol": "HAL",
                                  "price": ("<", 40.0)})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        sends_before = sent.labelled(link="b2")
        # Revoking alice uncovers bob's narrower subscription: the
        # antichain changes, so b2 must hear about it.
        pair.revoke("alice")
        pair.settle()
        assert sent.labelled(link="b2") == sends_before + 1
        # And the new cover is exact: a price above bob's bound no
        # longer crosses the link.
        forwarded = counter(pair, "b2",
                            "overlay.publications_forwarded_total")
        crossings = forwarded.labelled(link="b1")
        pair.publish({"symbol": "HAL", "price": 90.0}, b"too dear",
                     at="b2")
        pair.settle()
        assert forwarded.labelled(link="b1") == crossings
        assert pair.deliveries().get("bob", []) == []

    def test_recovery_refreshes_but_does_not_flood(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        sent = counter(pair, "b1", "overlay.adverts_sent_total")
        suppressed = counter(pair, "b1",
                             "overlay.adverts_suppressed_total")
        sends_before = sent.value
        suppressed_before = suppressed.value
        # Kill b1's enclave out of band and run the recovery protocol
        # (scheduled in-traffic deaths are exercised by the soak and
        # equivalence suites). Recovery rebuilds the same registrations
        # from WAL + checkpoint, so the re-exported covering set is
        # digest-identical: the bumped recovery counter forces a
        # refresh pass, but nothing is re-sent.
        pair.nodes["b1"].router.enclave.destroy()
        pair.nodes["b1"].supervisor.recover()
        pair.settle()
        recoveries = counter(pair, "b1", "recovery.recoveries_total")
        assert recoveries.value == 1
        assert sent.value == sends_before
        assert suppressed.value > suppressed_before
        # Routing still works on the rebuilt enclave.
        pair.publish({"symbol": "HAL"}, b"after recovery", at="b2")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"after recovery"]

    def test_quiescent_refresh_is_free(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        refreshes = counter(pair, "b1",
                            "overlay.advert_refreshes_total")
        refreshes_before = refreshes.value
        scheduler = pair.nodes["b1"].scheduler
        # Stable signature, clean dirty flag: not even an ecall.
        assert scheduler.refresh() == 0
        assert refreshes.value == refreshes_before
        # Forcing runs the export pass, but the digests still gate the
        # wire: nothing is sent.
        assert scheduler.refresh(force=True) == 0
        assert refreshes.value == refreshes_before + 1
