"""Partition tolerance: sever, store-and-forward, heal, exactly-once.

The contract under test: a severed link never *loses* a publication
and a healed link never *duplicates* one. Refused forwards are
dead-lettered under the ``link-down`` reason while the partition
lasts (the overlay still settles), requeued when the link heals, and
absorbed by the receiver's (origin, sequence) dedup if an alternate
path delivered them already. Replaying one script against the flat
oracle — which ignores sever/heal entirely — makes the claim exact:
per-client delivered multisets must match.
"""

import pytest

from repro.core.router import REASON_LINK_DOWN
from repro.overlay import FlatOracle, OverlayNetwork, Topology

from tests.overlay.conftest import make_partition_script, run_script

TOPOLOGIES = [
    pytest.param(Topology.line(3), 31, id="line3-seed31"),
    pytest.param(Topology.line(3), 32, id="line3-seed32"),
    pytest.param(Topology.line(4), 33, id="line4-seed33"),
    pytest.param(Topology.tree(5, seed=1), 34, id="tree5-seed34"),
    pytest.param(Topology.tree(5, seed=2), 35, id="tree5-seed35"),
    pytest.param(Topology.tree(6, seed=3), 36, id="tree6-seed36"),
    pytest.param(Topology.random(4, seed=1), 37, id="random4-seed37"),
    pytest.param(Topology.random(5, seed=2), 38, id="random5-seed38"),
    pytest.param(Topology.random(5, seed=3), 39, id="random5-seed39"),
]


def as_multisets(deliveries):
    """Per-client sorted payloads: mid-partition deliveries arrive
    late relative to same-side ones, so order across the cut is not
    comparable — the multiset is."""
    return {client: sorted(payloads)
            for client, payloads in deliveries.items()}


class TestPartitionEquivalence:

    @pytest.mark.parametrize("topology,seed", TOPOLOGIES)
    def test_partition_heal_preserves_exactly_once(self, topology,
                                                   seed, vendor_key):
        script = make_partition_script(topology, seed)
        overlay = OverlayNetwork(topology, vendor_key)
        oracle = FlatOracle(vendor_key)
        try:
            overlay_deliveries = run_script(overlay, script)
            oracle_deliveries = run_script(oracle, script)
            assert as_multisets(overlay_deliveries) \
                == as_multisets(oracle_deliveries)
            # Whatever was quarantined by the severed link must have
            # been requeued by the heal — the DLQ holds no link debt
            # once the run is over.
            snapshot = overlay.snapshot()
            quarantined = snapshot.get(
                "router.link_down_dead_letters_total", 0)
            requeued = snapshot.get(
                "router.dead_letters_requeued_total", 0)
            assert requeued == quarantined
            for node in overlay.nodes.values():
                assert not [letter for letter
                            in node.router.dead_letters
                            if letter.reason == REASON_LINK_DOWN]
        finally:
            overlay.close()
            oracle.close()


class TestStoreAndForward:
    """The deterministic two-broker version, counter by counter."""

    @pytest.fixture()
    def pair(self, vendor_key):
        network = OverlayNetwork(Topology.line(2), vendor_key)
        yield network
        network.close()

    def test_refused_forward_is_quarantined_then_requeued(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        pair.sever_link("b1", "b2")
        assert pair.down_links() == [("b1", "b2")]
        pair.publish({"symbol": "HAL", "price": 5.0}, b"cut off",
                     at="b2")
        # The partitioned overlay still settles; the forward b2 -> b1
        # is dead-lettered, not retried forever.
        pair.settle()
        assert pair.deliveries().get("alice", []) == []
        b2 = pair.nodes["b2"].router
        letters = [letter for letter in b2.dead_letters
                   if letter.reason == REASON_LINK_DOWN]
        assert len(letters) == 1
        assert letters[0].client_id == "link:b1"
        quarantined = pair.nodes["b2"].metrics.counter(
            "router.link_down_dead_letters_total")
        assert quarantined.value == 1

        pair.heal_link("b1", "b2")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"cut off"]
        assert not [letter for letter in b2.dead_letters
                    if letter.reason == REASON_LINK_DOWN]
        requeued = pair.nodes["b2"].metrics.counter(
            "router.dead_letters_requeued_total")
        assert requeued.value == 1

    def test_heal_is_idempotent_and_duplicate_free(self, pair):
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        pair.sever_link("b1", "b2")
        pair.sever_link("b1", "b2")  # idempotent
        pair.publish({"symbol": "HAL", "price": 5.0}, b"once only",
                     at="b2")
        pair.settle()
        pair.heal_link("b1", "b2")
        pair.heal_link("b1", "b2")  # no-op: link already up
        pair.settle()
        assert pair.deliveries()["alice"] == [b"once only"]

    def test_partition_does_not_withdraw_remote_interest(self, pair):
        """A partitioned (even confirmed-dead) neighbour's interest
        stays installed: only a clean leave withdraws it. Publications
        matching it keep being quarantined for the heal, which is the
        no-loss half of the store-and-forward contract."""
        pair.client("alice", "b1", subscription={"symbol": "HAL"})
        pair.settle()
        pair.sever_link("b1", "b2")
        # Drive the failure detector to a confirmed death.
        config = pair.nodes["b2"].membership.config
        for _ in range(config.confirm_dead_after + 1):
            pair.pump_all(membership_active=True)
        assert pair.nodes["b2"].membership.state_of("b1") == "dead"
        pair.publish({"symbol": "HAL", "price": 5.0}, b"kept",
                     at="b2")
        pair.settle()
        b2 = pair.nodes["b2"].router
        assert len([letter for letter in b2.dead_letters
                    if letter.reason == REASON_LINK_DOWN]) == 1
        pair.heal_link("b1", "b2")
        pair.settle()
        assert pair.deliveries()["alice"] == [b"kept"]
