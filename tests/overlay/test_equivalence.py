"""Routing-topology transparency: the overlay equals one flat router.

The overlay's whole correctness bar in one property: for any topology,
any home-broker placement and any entry broker, every client decrypts
exactly the payload sequence it would have received from a single
SCBR router holding all subscriptions. Each case replays one seeded
workload script against an :class:`~repro.overlay.OverlayNetwork` and
the :class:`~repro.overlay.FlatOracle` and compares the decrypted
deliveries byte-for-byte — and the property must also hold while a
broker's enclave is being killed and recovered mid-workload.
"""

import pytest

from repro.overlay import FlatOracle, OverlayNetwork, Topology
from repro.recovery import CrashSchedule

from tests.overlay.conftest import make_script, run_script

TOPOLOGIES = [
    pytest.param(Topology.line(3), 1, id="line3-seed1"),
    pytest.param(Topology.line(3), 2, id="line3-seed2"),
    pytest.param(Topology.line(3), 3, id="line3-seed3"),
    pytest.param(Topology.tree(5, seed=1), 4, id="tree5-seed4"),
    pytest.param(Topology.tree(5, seed=2), 5, id="tree5-seed5"),
    pytest.param(Topology.tree(5, seed=3), 6, id="tree5-seed6"),
    pytest.param(Topology.random(4, seed=1), 7, id="random4-seed7"),
    pytest.param(Topology.random(4, seed=2), 8, id="random4-seed8"),
    pytest.param(Topology.random(4, seed=3), 9, id="random4-seed9"),
]


def assert_equivalent(topology, script, vendor_key, **overlay_kwargs):
    overlay = OverlayNetwork(topology, vendor_key, **overlay_kwargs)
    oracle = FlatOracle(vendor_key)
    try:
        overlay_deliveries = run_script(overlay, script)
        oracle_deliveries = run_script(oracle, script)
        assert overlay_deliveries == oracle_deliveries
    finally:
        overlay.close()
        oracle.close()
    return overlay


class TestEquivalence:

    @pytest.mark.parametrize("topology,seed", TOPOLOGIES)
    def test_overlay_matches_flat_oracle(self, topology, seed,
                                         vendor_key):
        script = make_script(topology, seed)
        assert_equivalent(topology, script, vendor_key)

    def test_single_broker_degenerates_to_flat(self, vendor_key):
        topology = Topology(("b1",), (), shape="single")
        script = make_script(topology, 42, n_clients=2, n_publishes=4)
        assert_equivalent(topology, script, vendor_key)

    @pytest.mark.parametrize("topology,seed", [
        pytest.param(Topology.line(3), 31, id="columnar-line3"),
        pytest.param(Topology.tree(5, seed=2), 32, id="columnar-tree5"),
        pytest.param(Topology.random(4, seed=3), 33,
                     id="columnar-random4"),
    ])
    def test_columnar_brokers_match_flat_oracle(self, topology, seed,
                                                vendor_key):
        """Every broker matching through the columnar plane must
        deliver byte-identically to the forest-backed flat oracle —
        the backend may change cost, never routing."""
        script = make_script(topology, seed)
        assert_equivalent(topology, script, vendor_key,
                          matcher_backend="columnar")

    @pytest.mark.parametrize("victim,crash_seed", [("b2", 7),
                                                   ("b3", 11)])
    def test_equivalence_survives_broker_crashes(self, victim,
                                                 crash_seed,
                                                 vendor_key):
        """An interior broker's enclave dies repeatedly mid-workload;
        after recovery the deliveries are still byte-identical to the
        crash-free flat world — WAL replay, advert re-export and the
        host-side dedup window must conspire to neither lose nor
        duplicate anything."""
        topology = Topology.tree(5, seed=7)
        script = make_script(topology, 21, n_publishes=12)
        overlay = assert_equivalent(
            topology, script, vendor_key,
            crash_schedules={victim: CrashSchedule(
                seed=crash_seed, mean_interval=6, max_crashes=3)})
        registry = overlay.nodes[victim].metrics
        crashes = registry.counter("recovery.crashes_total").value
        recoveries = registry.counter(
            "recovery.recoveries_total").value
        assert crashes > 0, "the schedule never fired; the case is " \
            "not exercising recovery"
        assert recoveries == crashes
